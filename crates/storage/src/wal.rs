//! Segmented write-ahead log + checkpointer (the durability layer).
//!
//! The WAL records the engine's *logical* history: every admitted batch
//! and every punctuation, per stream, in the exact total order the
//! Wrapper ingress committed them. Because the engine is a
//! deterministic function of that history (the property the simulation
//! harness replays on), recovery does not need deep operator snapshots
//! — it re-ingests the logged sequence through the normal admit path
//! and every derived structure (archives, SteM state, window buffers,
//! PSoup results) grows back identical.
//!
//! On-disk layout, all little-endian, under one directory:
//!
//! ```text
//! wal/seg-00000001.wal      frame*          (appended, possibly torn)
//! wal/ckpt-00000003.ckpt    frame*          (tmp-written, renamed)
//!
//! frame   := len:u32 crc:u32 payload        len = payload length,
//!                                           crc = crc32(payload)
//! payload := kind:u8 body
//!   1 STREAM  gid:u32 name_len:u32 utf8     stream declaration
//!   2 BATCH   gid:u32 count:u32 tuple*      admitted batch (codec tuples)
//!   3 PUNCT   gid:u32 ticks:i64             punctuation
//! ```
//!
//! **Torn tails.** Only the last segment can be torn (rotation and
//! checkpointing happen strictly after a commit returns). A reader
//! stops at the first frame whose header is short, whose length is
//! implausible, or whose CRC disagrees — everything before that point
//! is the longest valid prefix and is exactly what recovery replays.
//! [`WalWriter::open`] physically truncates the tear so new appends
//! continue from a clean boundary.
//!
//! **Checkpoints are compaction.** A checkpoint written while segment
//! `S` is current snapshots every stream's archive (as BATCH frames)
//! plus the last punctuation per stream. It is written tmp + fsync +
//! rename (with the rename made durable by a directory fsync) and then
//! *verified readable* before anything it supersedes is pruned; only
//! then does the writer rotate to `S+1`, delete segments `<= S`, and
//! delete checkpoints older than the immediate predecessor. A crash at
//! any point of that protocol loses nothing: an unrenamed checkpoint is
//! just a `.tmp`, and [`WalWriter::open`] clamps the resume segment
//! past the newest checkpoint, so a crash between rename and rotate
//! can never strand post-reboot appends in a superseded segment.
//!
//! Recovery reads the newest checkpoint whose frames all verify, then
//! the *contiguous* run of segments after it — a gap in segment
//! numbers ends the readable history, because whatever followed the
//! gap is out of order relative to the pruned middle. The retained
//! predecessor checkpoint is a last-resort fallback for bit rot in the
//! newest one: its own tail segments were compacted away, so falling
//! back recovers an older — but still consistent — prefix, not the
//! full history.

use std::fs::{self, File, OpenOptions};
use std::path::{Path, PathBuf};

use tcq_common::{Result, TcqError, Tuple};

use crate::codec::{crc32, encode_tuple, Decoder};
use crate::faultio::FaultIo;

/// Upper bound on one frame's payload (plausibility check while
/// scanning: a length field beyond this is treated as a torn tail, not
/// an allocation request).
pub const MAX_FRAME: u32 = 1 << 26;

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A stream existed under this (gid, name) when the record was
    /// logged. Recovery maps logged gids onto the freshly registered
    /// streams *by name*, so registration order may differ across
    /// incarnations without corrupting the replay.
    StreamDecl { gid: u32, name: String },
    /// One admitted batch, in admission order.
    Batch { gid: u32, tuples: Vec<Tuple> },
    /// A punctuation: no tuple of `gid` at or before `ticks` remains.
    Punct { gid: u32, ticks: i64 },
}

const KIND_STREAM: u8 = 1;
const KIND_BATCH: u8 = 2;
const KIND_PUNCT: u8 = 3;

/// Frame one payload in place: reserve the `len | crc` header, let
/// `write_payload` append the body directly to `out`, then backfill the
/// header — no intermediate buffer, which matters on the admit path
/// where every batch passes through here.
fn frame_into(out: &mut Vec<u8>, write_payload: impl FnOnce(&mut Vec<u8>)) {
    let start = out.len();
    out.extend_from_slice(&[0u8; 8]);
    write_payload(out);
    let len = (out.len() - start - 8) as u32;
    let crc = crc32(&out[start + 8..]);
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Append one CRC-framed batch record built from *borrowed* tuples —
/// the zero-copy twin of `encode_record(WalRecord::Batch { .. })`, so
/// the engine can log an admitted batch without cloning it first.
pub fn encode_batch_record(gid: u32, tuples: &[Tuple], out: &mut Vec<u8>) {
    frame_into(out, |payload| {
        payload.push(KIND_BATCH);
        payload.extend_from_slice(&gid.to_le_bytes());
        payload.extend_from_slice(&(tuples.len() as u32).to_le_bytes());
        for t in tuples {
            encode_tuple(t, payload);
        }
    });
}

/// Append one CRC-framed record to `out`.
pub fn encode_record(rec: &WalRecord, out: &mut Vec<u8>) {
    match rec {
        WalRecord::StreamDecl { gid, name } => frame_into(out, |payload| {
            payload.push(KIND_STREAM);
            payload.extend_from_slice(&gid.to_le_bytes());
            payload.extend_from_slice(&(name.len() as u32).to_le_bytes());
            payload.extend_from_slice(name.as_bytes());
        }),
        WalRecord::Batch { gid, tuples } => encode_batch_record(*gid, tuples, out),
        WalRecord::Punct { gid, ticks } => frame_into(out, |payload| {
            payload.push(KIND_PUNCT);
            payload.extend_from_slice(&gid.to_le_bytes());
            payload.extend_from_slice(&ticks.to_le_bytes());
        }),
    }
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord> {
    let mut d = Decoder::new(payload);
    let rec = match d.u8()? {
        KIND_STREAM => {
            let gid = d.u32()?;
            let len = d.u32()? as usize;
            let name = std::str::from_utf8(d.take(len)?)
                .map_err(|_| TcqError::StorageError("invalid utf8 in stream name".into()))?
                .to_string();
            WalRecord::StreamDecl { gid, name }
        }
        KIND_BATCH => {
            let gid = d.u32()?;
            let n = d.u32()? as usize;
            let mut tuples = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                tuples.push(d.tuple()?);
            }
            WalRecord::Batch { gid, tuples }
        }
        KIND_PUNCT => WalRecord::Punct {
            gid: d.u32()?,
            ticks: d.i64()?,
        },
        kind => {
            return Err(TcqError::StorageError(format!(
                "unknown wal record kind {kind}"
            )))
        }
    };
    if !d.is_exhausted() {
        return Err(TcqError::StorageError(
            "trailing bytes in wal record".into(),
        ));
    }
    Ok(rec)
}

/// Scan `buf` frame by frame, returning every record of the longest
/// valid prefix and that prefix's byte length. Never errs: a torn,
/// truncated, or bit-flipped frame simply ends the prefix — bytes
/// beyond `valid_len` are the tail recovery truncates.
pub fn read_frames(buf: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= 8 {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_FRAME || (len as usize) > buf.len() - pos - 8 {
            break;
        }
        let payload = &buf[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != crc {
            break;
        }
        match decode_payload(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => break,
        }
        pos += 8 + len as usize;
    }
    (records, pos)
}

fn seg_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(format!("seg-{n:08}.wal"))
}

fn ckpt_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(format!("ckpt-{n:08}.ckpt"))
}

/// Numbered WAL files under `dir`: `(segments, checkpoints)`, each
/// sorted ascending by number.
fn list_dir(dir: &Path) -> (Vec<u64>, Vec<u64>) {
    let mut segs = Vec::new();
    let mut ckpts = Vec::new();
    let Ok(rd) = fs::read_dir(dir) else {
        return (segs, ckpts);
    };
    for entry in rd.filter_map(|e| e.ok()) {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(n) = name
            .strip_prefix("seg-")
            .and_then(|r| r.strip_suffix(".wal"))
            .and_then(|r| r.parse().ok())
        {
            segs.push(n);
        } else if let Some(n) = name
            .strip_prefix("ckpt-")
            .and_then(|r| r.strip_suffix(".ckpt"))
            .and_then(|r| r.parse().ok())
        {
            ckpts.push(n);
        }
    }
    segs.sort_unstable();
    ckpts.sort_unstable();
    (segs, ckpts)
}

/// Whether `dir` holds any WAL state worth recovering from.
pub fn has_log(dir: &Path) -> bool {
    let (segs, ckpts) = list_dir(dir);
    !segs.is_empty() || !ckpts.is_empty()
}

/// Byte counters the writer maintains (mirrored onto `tcq$wal`).
#[derive(Debug, Clone, Copy, Default)]
pub struct WalWriterStats {
    /// Payload + framing bytes handed to the OS.
    pub appended_bytes: u64,
    /// Bytes covered by an explicit fsync (equals `appended_bytes` in
    /// `Fsync` mode, 0 in `Buffered`).
    pub synced_bytes: u64,
    /// Torn-tail bytes truncated when the log was opened.
    pub truncated_bytes: u64,
    /// Records appended.
    pub records: u64,
    /// Commit (write) calls.
    pub commits: u64,
    /// fsync calls.
    pub syncs: u64,
}

/// The appender: one open segment file, frames buffered per commit.
///
/// `append` only encodes into an in-memory buffer; `commit` hands the
/// whole buffer to the OS in one write (and one `sync_data` when
/// `fsync` is on) — that is the atomicity unit the engine relies on:
/// a batch and its bookkeeping either both survive or neither does.
pub struct WalWriter {
    dir: PathBuf,
    fsync: bool,
    segment_bytes: u64,
    seg_no: u64,
    file: File,
    seg_len: u64,
    buf: Vec<u8>,
    stats: WalWriterStats,
    io: FaultIo,
}

impl WalWriter {
    /// Open (or create) the log in `dir`, truncating any torn tail of
    /// the last segment so appends continue from a clean frame
    /// boundary. `fsync` selects the `Durability::Fsync` behaviour;
    /// segments rotate once they exceed `segment_bytes`.
    pub fn open(dir: &Path, fsync: bool, segment_bytes: u64) -> Result<WalWriter> {
        WalWriter::open_with_io(dir, fsync, segment_bytes, FaultIo::new())
    }

    /// [`WalWriter::open`] with every subsequent file operation routed
    /// through `io`, so tests and the simulation harness can fail a
    /// specific write, sync, or rename on a replayable schedule.
    pub fn open_with_io(
        dir: &Path,
        fsync: bool,
        segment_bytes: u64,
        io: FaultIo,
    ) -> Result<WalWriter> {
        fs::create_dir_all(dir).map_err(|e| TcqError::StorageError(e.to_string()))?;
        let (segs, ckpts) = list_dir(dir);
        let mut stats = WalWriterStats::default();
        // A checkpoint at `K` supersedes every segment `<= K`, and
        // recovery only reads segments `> K`. A crash between the
        // checkpoint rename and the rotate that follows it leaves
        // seg-K on disk next to ckpt-K; resuming appends into seg-K
        // would put every post-reboot commit in a file the next
        // recovery never reads. Clamp the resume point past the newest
        // checkpoint and finish the interrupted prune instead.
        let floor = ckpts.last().map_or(0, |k| k + 1);
        let (seg_no, seg_len) = match segs.last().copied().filter(|&last| last >= floor) {
            Some(last) => {
                let path = seg_path(dir, last);
                let bytes = fs::read(&path).map_err(|e| TcqError::StorageError(e.to_string()))?;
                let (_, valid) = read_frames(&bytes);
                if valid < bytes.len() {
                    stats.truncated_bytes = (bytes.len() - valid) as u64;
                    let f = OpenOptions::new()
                        .write(true)
                        .open(&path)
                        .map_err(|e| TcqError::StorageError(e.to_string()))?;
                    f.set_len(valid as u64)
                        .map_err(|e| TcqError::StorageError(e.to_string()))?;
                }
                if valid as u64 >= segment_bytes {
                    (last + 1, 0)
                } else {
                    (last, valid as u64)
                }
            }
            // All live segments pruned (or a fresh log): continue after
            // the newest checkpoint so file numbers stay totally
            // ordered.
            None => (floor.max(1), 0),
        };
        for s in segs.into_iter().filter(|&s| s < floor) {
            let _ = fs::remove_file(seg_path(dir, s));
        }
        let file = io
            .open_append(&seg_path(dir, seg_no))
            .map_err(|e| TcqError::StorageError(e.to_string()))?;
        // Make the segment's directory entry (and any prune above)
        // durable before the first append lands in it.
        io.sync_dir(dir)
            .map_err(|e| TcqError::StorageError(e.to_string()))?;
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            fsync,
            segment_bytes,
            seg_no,
            file,
            seg_len,
            buf: Vec::new(),
            stats,
            io,
        })
    }

    /// The fault-injection handle every file operation goes through.
    pub fn fault_io(&self) -> &FaultIo {
        &self.io
    }

    /// Stage one record for the next [`WalWriter::commit`].
    pub fn append(&mut self, rec: &WalRecord) {
        encode_record(rec, &mut self.buf);
        self.stats.records += 1;
    }

    /// Stage one batch record from borrowed tuples — the admit-path
    /// fast lane: no `WalRecord` allocation, no tuple clones.
    pub fn append_batch(&mut self, gid: u32, tuples: &[Tuple]) {
        encode_batch_record(gid, tuples, &mut self.buf);
        self.stats.records += 1;
    }

    /// Flush everything staged since the last commit to the current
    /// segment (one write, plus one `sync_data` in fsync mode),
    /// rotating afterwards if the segment is full. Returns the bytes
    /// written.
    ///
    /// On error the staged buffer is *retained* (the caller decides
    /// whether the batch is lost); a failed write or sync must not be
    /// retried against the same segment — per the fsync-failure rules,
    /// recover via [`WalWriter::seal_and_reset`] instead.
    pub fn commit(&mut self) -> Result<u64> {
        if self.buf.is_empty() {
            return Ok(0);
        }
        let n = self.buf.len() as u64;
        self.io
            .write_all(&mut self.file, &self.buf)
            .map_err(|e| TcqError::StorageError(format!("wal append: {e}")))?;
        self.buf.clear();
        self.seg_len += n;
        self.stats.appended_bytes += n;
        self.stats.commits += 1;
        if self.fsync {
            self.io
                .sync_data(&self.file)
                .map_err(|e| TcqError::StorageError(format!("wal fsync: {e}")))?;
            self.stats.synced_bytes += n;
            self.stats.syncs += 1;
        }
        if self.seg_len >= self.segment_bytes {
            self.rotate()?;
        }
        Ok(n)
    }

    /// Close the current segment and start the next one.
    pub fn rotate(&mut self) -> Result<u64> {
        if self.fsync {
            // A failed sync here means the closing segment's tail may
            // never reach the platter. It must propagate: pretending
            // the rotation was clean would hand recovery a hole that
            // was never declared.
            self.io
                .sync_data(&self.file)
                .map_err(|e| TcqError::StorageError(format!("wal rotate fsync: {e}")))?;
        }
        self.seg_no += 1;
        self.file = self
            .io
            .open_append(&seg_path(&self.dir, self.seg_no))
            .map_err(|e| TcqError::StorageError(format!("wal rotate: {e}")))?;
        if self.fsync {
            // Power loss must not drop the new segment's directory
            // entry while keeping later ones — that would read as a
            // gap and end recovery early.
            self.io
                .sync_dir(&self.dir)
                .map_err(|e| TcqError::StorageError(format!("wal rotate dirsync: {e}")))?;
        }
        self.seg_len = 0;
        Ok(self.seg_no)
    }

    /// Abandon the current segment after a failed commit: discard the
    /// staged (never-acknowledged) bytes and continue in a fresh
    /// segment, deliberately *without* re-syncing the poisoned file —
    /// after a failed fsync the kernel may already have dropped the
    /// dirty pages while clearing the error, so a retried fsync that
    /// reports success proves nothing (the fsyncgate lesson). The
    /// abandoned segment keeps whatever valid prefix actually landed;
    /// a torn tail is truncated by the next recovery scan. Callers
    /// should follow up with a full checkpoint so history re-anchors at
    /// a verified snapshot.
    pub fn seal_and_reset(&mut self) -> Result<u64> {
        self.buf.clear();
        self.seg_no += 1;
        self.file = self
            .io
            .open_append(&seg_path(&self.dir, self.seg_no))
            .map_err(|e| TcqError::StorageError(format!("wal seal: {e}")))?;
        self.seg_len = 0;
        Ok(self.seg_no)
    }

    /// The current segment's number.
    pub fn seg_no(&self) -> u64 {
        self.seg_no
    }

    /// Writer-side byte counters.
    pub fn stats(&self) -> WalWriterStats {
        self.stats
    }

    /// Write checkpoint `seq` (covering segments `<= seq`) atomically
    /// (tmp + fsync + rename + directory fsync), verify it reads back,
    /// rotate past it, and prune the segments and all but the
    /// immediately preceding checkpoint it supersedes. Returns the
    /// checkpoint's size in bytes. Call with `seq == self.seg_no()`.
    pub fn checkpoint(&mut self, seq: u64, records: &[WalRecord]) -> Result<u64> {
        let mut buf = Vec::new();
        for rec in records {
            encode_record(rec, &mut buf);
        }
        let bytes = buf.len() as u64;
        let tmp = self.dir.join(format!("ckpt-{seq:08}.tmp"));
        let final_path = ckpt_path(&self.dir, seq);
        let err = |stage: &str, e: std::io::Error| {
            TcqError::StorageError(format!("checkpoint {stage}: {e}"))
        };
        let staged = (|| {
            let mut f = self.io.create(&tmp).map_err(|e| err("create", e))?;
            self.io
                .write_all(&mut f, &buf)
                .map_err(|e| err("write", e))?;
            self.io.sync_all(&f).map_err(|e| err("fsync", e))
        })();
        if let Err(e) = staged {
            // A failed stage leaves only the tmp file; nothing it
            // superseded was touched, so remove it and report.
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        self.io
            .rename(&tmp, &final_path)
            .map_err(|e| err("rename", e))?;
        // The rename must be durable before anything it supersedes is
        // unlinked, or power loss could surface the unlinks without
        // the checkpoint.
        self.io.sync_dir(&self.dir).map_err(|e| err("dirsync", e))?;
        // Verify the checkpoint reads back before pruning the history
        // it replaces: a checkpoint that cannot be read must not cost
        // the segments that could rebuild it (and a torn rename — the
        // destination holding a truncated prefix — is only caught
        // here).
        let back = self.io.read(&final_path).map_err(|e| err("readback", e))?;
        let (back_records, valid) = read_frames(&back);
        if valid != back.len() || back_records.len() != records.len() {
            // The record-count check catches a truncation that happens
            // to end exactly on a frame boundary, which byte-level
            // validation alone would bless.
            let _ = fs::remove_file(&final_path);
            return Err(TcqError::StorageError(format!(
                "checkpoint {seq} failed read-back verification ({valid} of {} bytes, {} of {} records valid)",
                back.len(),
                back_records.len(),
                records.len()
            )));
        }
        if self.seg_no <= seq {
            self.seg_no = seq;
            self.rotate()?;
        }
        let (segs, ckpts) = list_dir(&self.dir);
        for s in segs.into_iter().filter(|&s| s <= seq) {
            let _ = fs::remove_file(seg_path(&self.dir, s));
        }
        // Keep the newest older checkpoint as a bit-rot fallback (its
        // tail segments are gone, so it recovers an older but still
        // consistent prefix); prune everything before it.
        let prev = ckpts.iter().rev().find(|&&c| c < seq).copied();
        for c in ckpts.into_iter().filter(|&c| c < seq && Some(c) != prev) {
            let _ = fs::remove_file(ckpt_path(&self.dir, c));
        }
        Ok(bytes)
    }
}

/// What [`read_log`] recovered.
#[derive(Debug, Clone, Default)]
pub struct WalScan {
    /// The replayable history: checkpoint records first, then the WAL
    /// tail in commit order.
    pub records: Vec<WalRecord>,
    /// Valid bytes read across checkpoint + segments.
    pub bytes: u64,
    /// Torn bytes ignored past the last valid frame.
    pub truncated: u64,
    /// Tail segments read (not counting the checkpoint).
    pub segments: usize,
    /// The checkpoint the scan started from, if any.
    pub checkpoint: Option<u64>,
}

/// Read the recoverable history from `dir`: the newest checkpoint whose
/// frames all verify, then the contiguous run of later segments up to
/// the first torn frame or numbering gap. Returns an empty scan for a
/// missing or empty directory.
pub fn read_log(dir: &Path) -> Result<WalScan> {
    let (segs, ckpts) = list_dir(dir);
    let mut scan = WalScan::default();
    // Newest fully valid checkpoint wins; an unreadable one (crash while
    // checkpointing would have left only a .tmp, but be defensive about
    // bit rot too) falls back to the next older.
    for &k in ckpts.iter().rev() {
        let Ok(bytes) = fs::read(ckpt_path(dir, k)) else {
            continue;
        };
        let (records, valid) = read_frames(&bytes);
        if valid == bytes.len() {
            scan.records = records;
            scan.bytes = valid as u64;
            scan.checkpoint = Some(k);
            break;
        }
    }
    let floor = scan.checkpoint.unwrap_or(0);
    let mut prev = floor;
    for &s in segs.iter().filter(|&&s| s > floor) {
        // Segment numbers are contiguous while a log is healthy; a
        // gap means compaction pruned the middle (e.g. this scan fell
        // back past a bit-rotted newest checkpoint whose tail segments
        // are gone). History past a gap is out of order relative to
        // the pruned part — stop at the consistent prefix.
        if s != prev + 1 {
            break;
        }
        prev = s;
        let bytes =
            fs::read(seg_path(dir, s)).map_err(|e| TcqError::StorageError(e.to_string()))?;
        let (records, valid) = read_frames(&bytes);
        scan.records.extend(records);
        scan.bytes += valid as u64;
        scan.segments += 1;
        if valid < bytes.len() {
            // A tear ends the recoverable history: anything in a later
            // segment would be out of order relative to the lost tail.
            scan.truncated = (bytes.len() - valid) as u64;
            break;
        }
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::Value;

    fn tdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tcq-wal-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn batch(gid: u32, n: usize) -> WalRecord {
        WalRecord::Batch {
            gid,
            tuples: (0..n)
                .map(|i| Tuple::at_seq(vec![Value::Int(i as i64), Value::str("x")], i as i64))
                .collect(),
        }
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::StreamDecl {
                gid: 0,
                name: "quotes".into(),
            },
            batch(0, 3),
            WalRecord::Punct { gid: 0, ticks: 7 },
            batch(0, 1),
        ]
    }

    #[test]
    fn frames_round_trip() {
        let recs = sample_records();
        let mut buf = Vec::new();
        for r in &recs {
            encode_record(r, &mut buf);
        }
        let (back, valid) = read_frames(&buf);
        assert_eq!(back, recs);
        assert_eq!(valid, buf.len());
    }

    #[test]
    fn torn_tail_yields_longest_valid_prefix() {
        let recs = sample_records();
        let mut buf = Vec::new();
        let mut ends = Vec::new();
        for r in &recs {
            encode_record(r, &mut buf);
            ends.push(buf.len());
        }
        // Cut at every byte: the prefix recovered is exactly the frames
        // that end at or before the cut.
        for cut in 0..buf.len() {
            let (back, valid) = read_frames(&buf[..cut]);
            let want = ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(back.len(), want, "cut at {cut}");
            assert_eq!(valid, if want == 0 { 0 } else { ends[want - 1] });
            assert_eq!(back[..], recs[..want]);
        }
    }

    #[test]
    fn bit_flip_ends_the_prefix() {
        let recs = sample_records();
        let mut buf = Vec::new();
        for r in &recs {
            encode_record(r, &mut buf);
        }
        let mid = buf.len() / 2;
        buf[mid] ^= 0x10;
        let (back, valid) = read_frames(&buf);
        assert!(back.len() < recs.len());
        assert!(valid <= mid);
        assert_eq!(back[..], recs[..back.len()]);
    }

    #[test]
    fn writer_reader_round_trip_with_rotation() {
        let dir = tdir("rotate");
        let recs = sample_records();
        {
            // Tiny segments: every commit rotates.
            let mut w = WalWriter::open(&dir, false, 16).unwrap();
            for r in &recs {
                w.append(r);
                w.commit().unwrap();
            }
            assert!(w.seg_no() > 1, "rotation happened");
        }
        let scan = read_log(&dir).unwrap();
        assert_eq!(scan.records, recs);
        assert_eq!(scan.truncated, 0);
        assert!(scan.segments > 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_truncates_torn_tail_and_appends() {
        let dir = tdir("torn");
        {
            let mut w = WalWriter::open(&dir, true, 1 << 20).unwrap();
            for r in sample_records() {
                w.append(&r);
            }
            w.commit().unwrap();
        }
        // Tear the tail: append garbage that looks like a frame header.
        let seg = seg_path(&dir, 1);
        let mut bytes = fs::read(&seg).unwrap();
        let whole = bytes.len();
        bytes.extend_from_slice(&[9, 0, 0, 0, 1, 2, 3, 4, 5]);
        fs::write(&seg, &bytes).unwrap();
        {
            let mut w = WalWriter::open(&dir, false, 1 << 20).unwrap();
            assert_eq!(w.stats().truncated_bytes, 9);
            w.append(&WalRecord::Punct { gid: 0, ticks: 99 });
            w.commit().unwrap();
        }
        assert_eq!(fs::read(&seg).unwrap().len(), whole + 8 + 13);
        let scan = read_log(&dir).unwrap();
        let mut want = sample_records();
        want.push(WalRecord::Punct { gid: 0, ticks: 99 });
        assert_eq!(scan.records, want);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_compacts_and_recovery_prefers_it() {
        let dir = tdir("ckpt");
        let mut w = WalWriter::open(&dir, false, 1 << 20).unwrap();
        w.append(&batch(0, 5));
        w.commit().unwrap();
        // Snapshot replaces the logged history...
        let snap = vec![
            WalRecord::StreamDecl {
                gid: 0,
                name: "quotes".into(),
            },
            batch(0, 5),
        ];
        let seq = w.seg_no();
        w.checkpoint(seq, &snap).unwrap();
        // ...and the tail continues after it.
        w.append(&WalRecord::Punct { gid: 0, ticks: 4 });
        w.commit().unwrap();
        let scan = read_log(&dir).unwrap();
        assert_eq!(scan.checkpoint, Some(seq));
        let mut want = snap;
        want.push(WalRecord::Punct { gid: 0, ticks: 4 });
        assert_eq!(scan.records, want);
        // The superseded segment is gone.
        let (segs, ckpts) = list_dir(&dir);
        assert_eq!(ckpts, vec![seq]);
        assert!(segs.iter().all(|&s| s > seq));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_resumes_past_checkpoint_left_by_interrupted_rotate() {
        // Crash window inside checkpoint(): ckpt-K renamed into place
        // but the rotate/prune that follows never ran, so disk holds
        // both ckpt-K and seg-K. Post-reboot appends must not land in
        // seg-K — recovery reads only segments > K and would silently
        // drop them.
        let dir = tdir("ckpt-crash");
        let snap = vec![
            WalRecord::StreamDecl {
                gid: 0,
                name: "quotes".into(),
            },
            batch(0, 2),
        ];
        let seq;
        {
            let mut w = WalWriter::open(&dir, false, 1 << 20).unwrap();
            w.append(&batch(0, 2));
            w.commit().unwrap();
            seq = w.seg_no();
            // Hand-write the checkpoint without rotating or pruning,
            // exactly what the crash leaves behind.
            let mut buf = Vec::new();
            for r in &snap {
                encode_record(r, &mut buf);
            }
            fs::write(ckpt_path(&dir, seq), &buf).unwrap();
        }
        {
            let mut w = WalWriter::open(&dir, false, 1 << 20).unwrap();
            assert!(w.seg_no() > seq, "resume clamped past the checkpoint");
            w.append(&WalRecord::Punct { gid: 0, ticks: 5 });
            w.commit().unwrap();
        }
        let scan = read_log(&dir).unwrap();
        assert_eq!(scan.checkpoint, Some(seq));
        let mut want = snap;
        want.push(WalRecord::Punct { gid: 0, ticks: 5 });
        assert_eq!(scan.records, want, "post-reboot commit survives recovery");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn previous_checkpoint_retained_as_bit_rot_fallback() {
        let dir = tdir("ckpt-prev");
        let mut w = WalWriter::open(&dir, false, 1 << 20).unwrap();
        let ckpt = |w: &mut WalWriter, fill: WalRecord, snap: WalRecord| {
            w.append(&fill);
            w.commit().unwrap();
            let seq = w.seg_no();
            w.checkpoint(seq, std::slice::from_ref(&snap)).unwrap();
            seq
        };
        let seq1 = ckpt(&mut w, batch(0, 1), batch(0, 1));
        let seq2 = ckpt(&mut w, batch(0, 2), batch(0, 3));
        // Newest + immediate predecessor survive.
        assert_eq!(list_dir(&dir).1, vec![seq1, seq2]);
        // A third checkpoint drops the first.
        let seq3 = ckpt(&mut w, batch(0, 4), batch(0, 5));
        assert_eq!(list_dir(&dir).1, vec![seq2, seq3]);
        // Bit rot in the newest: recovery falls back to the
        // predecessor's consistent (if older) prefix, and the segment
        // numbering gap keeps it from replaying out-of-order tail.
        let p = ckpt_path(&dir, seq3);
        let mut bytes = fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&p, &bytes).unwrap();
        let scan = read_log(&dir).unwrap();
        assert_eq!(scan.checkpoint, Some(seq2));
        assert_eq!(scan.records, vec![batch(0, 3)]);
        let _ = fs::remove_dir_all(&dir);
    }

    use crate::faultio::{FaultIo, FaultKind, FaultPlan};

    fn faulty(dir: &Path, fsync: bool, seg_bytes: u64) -> (WalWriter, FaultIo) {
        let io = FaultIo::new();
        let w = WalWriter::open_with_io(dir, fsync, seg_bytes, io.clone()).unwrap();
        (w, io)
    }

    #[test]
    fn enospc_during_checkpoint_preserves_history() {
        let dir = tdir("enospc-ckpt");
        let (mut w, io) = faulty(&dir, false, 1 << 20);
        let recs = sample_records();
        for r in &recs {
            w.append(r);
        }
        w.commit().unwrap();
        // Disk fills exactly as the checkpoint body is written.
        io.arm(FaultPlan {
            kind: FaultKind::Enospc,
            after: 0,
            count: 1,
        });
        let seq = w.seg_no();
        let err = w.checkpoint(seq, &recs).unwrap_err();
        assert!(err.to_string().contains("enospc"), "{err}");
        // Nothing the checkpoint would have superseded was touched —
        // recovery still reads the full logged history, and no stray
        // tmp file is left behind.
        let scan = read_log(&dir).unwrap();
        assert_eq!(scan.records, recs);
        assert_eq!(scan.checkpoint, None);
        assert!(!dir.join(format!("ckpt-{seq:08}.tmp")).exists());
        // Space frees up (the plan is spent): the retry succeeds.
        w.checkpoint(seq, &recs).unwrap();
        assert_eq!(read_log(&dir).unwrap().checkpoint, Some(seq));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_failure_during_rotation_propagates_and_seal_recovers() {
        let dir = tdir("fsyncfail-rotate");
        // Tiny segments: the first commit triggers a rotation.
        let (mut w, io) = faulty(&dir, true, 8);
        // Commit syncs once, then rotation syncs the closing segment:
        // pass the first, fail the second.
        io.arm(FaultPlan {
            kind: FaultKind::FsyncFail,
            after: 1,
            count: 1,
        });
        w.append(&batch(0, 2));
        let err = w.commit().unwrap_err();
        assert!(err.to_string().contains("rotate fsync"), "{err}");
        // Per the fsync rules the segment is abandoned, not re-synced;
        // a verified checkpoint re-anchors history.
        w.seal_and_reset().unwrap();
        let snap = sample_records();
        let seq = w.seg_no();
        w.checkpoint(seq, &snap).unwrap();
        let scan = read_log(&dir).unwrap();
        assert_eq!(scan.checkpoint, Some(seq));
        assert_eq!(scan.records, snap);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_tears_tail_and_checkpoint_reanchors() {
        let dir = tdir("shortwrite");
        let (mut w, io) = faulty(&dir, false, 1 << 20);
        w.append(&batch(0, 3));
        w.commit().unwrap();
        io.arm(FaultPlan {
            kind: FaultKind::ShortWrite,
            after: 0,
            count: 1,
        });
        w.append(&batch(0, 5));
        assert!(w.commit().is_err());
        // The torn frame is invisible to recovery; the prior commit
        // survives intact.
        let scan = read_log(&dir).unwrap();
        assert_eq!(scan.records, vec![batch(0, 3)]);
        assert!(scan.truncated > 0, "tear detected");
        // A tear ends recoverable history, so recovery would never
        // read segments appended after it — healing therefore demands
        // a checkpoint, not just a fresh segment.
        w.seal_and_reset().unwrap();
        let snap = vec![batch(0, 3), batch(0, 5)];
        let seq = w.seg_no();
        w.checkpoint(seq, &snap).unwrap();
        w.append(&WalRecord::Punct { gid: 0, ticks: 9 });
        w.commit().unwrap();
        let scan = read_log(&dir).unwrap();
        let mut want = snap;
        want.push(WalRecord::Punct { gid: 0, ticks: 9 });
        assert_eq!(scan.records, want);
        assert_eq!(scan.truncated, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_rename_checkpoint_caught_by_readback() {
        let dir = tdir("tornrename");
        let (mut w, io) = faulty(&dir, false, 1 << 20);
        let recs = sample_records();
        for r in &recs {
            w.append(r);
        }
        w.commit().unwrap();
        io.arm(FaultPlan {
            kind: FaultKind::TornRename,
            after: 0,
            count: 1,
        });
        let seq = w.seg_no();
        // The rename itself reports success; only read-back
        // verification notices the truncated checkpoint — and it must
        // not cost the segments that could rebuild it.
        let err = w.checkpoint(seq, &recs).unwrap_err();
        assert!(err.to_string().contains("read-back"), "{err}");
        let scan = read_log(&dir).unwrap();
        assert_eq!(scan.records, recs);
        assert_eq!(scan.checkpoint, None);
        // Healed: the retry lands and compacts.
        w.checkpoint(seq, &recs).unwrap();
        assert_eq!(read_log(&dir).unwrap().checkpoint, Some(seq));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eio_on_commit_loses_only_the_staged_batch() {
        let dir = tdir("eio");
        let (mut w, io) = faulty(&dir, false, 1 << 20);
        w.append(&batch(0, 2));
        w.commit().unwrap();
        io.arm(FaultPlan {
            kind: FaultKind::Eio,
            after: 0,
            count: 1,
        });
        w.append(&batch(0, 7));
        assert!(w.commit().is_err());
        // Nothing reached the file: no tear, just a missing batch.
        let scan = read_log(&dir).unwrap();
        assert_eq!(scan.records, vec![batch(0, 2)]);
        assert_eq!(scan.truncated, 0);
        // seal_and_reset discards the staged bytes (they were never
        // acknowledged); the next commit starts clean.
        w.seal_and_reset().unwrap();
        w.append(&WalRecord::Punct { gid: 0, ticks: 3 });
        w.commit().unwrap();
        // The fresh segment is contiguous with the abandoned one, so
        // the post-heal tail is readable even without a checkpoint
        // (the abandoned segment has no tear in the EIO case).
        let scan = read_log(&dir).unwrap();
        assert_eq!(
            scan.records,
            vec![batch(0, 2), WalRecord::Punct { gid: 0, ticks: 3 }]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_or_missing_dir_recovers_to_nothing() {
        let dir = tdir("empty");
        assert!(!has_log(&dir));
        let scan = read_log(&dir).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.checkpoint, None);
    }
}
