//! A frame cache over sealed archive segments.

use std::collections::HashMap;
use std::sync::Arc;

use tcq_common::Tuple;

/// Replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Evict the least-recently-used frame.
    Lru,
    /// Second-chance clock sweep.
    Clock,
}

/// Cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Lookups that found the frame resident.
    pub hits: u64,
    /// Lookups that had to load from disk.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
}

/// A cache key: (stream id, segment number).
pub type FrameKey = (u64, u64);

#[derive(Debug)]
struct Frame {
    data: Arc<Vec<Tuple>>,
    /// LRU timestamp.
    last_used: u64,
    /// Clock reference bit.
    referenced: bool,
}

/// A buffer pool caching decoded segments.
///
/// The pool stores decoded tuple vectors behind `Arc`s, so returning a
/// cached segment to a scan is a pointer clone and eviction cannot
/// invalidate an in-progress read.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    policy: Replacement,
    frames: HashMap<FrameKey, Frame>,
    /// Clock sweep order and hand position.
    clock_order: Vec<FrameKey>,
    clock_hand: usize,
    tick: u64,
    stats: PoolStats,
}

impl BufferPool {
    /// A pool holding at most `capacity` segments under `policy`.
    pub fn new(capacity: usize, policy: Replacement) -> BufferPool {
        BufferPool {
            capacity: capacity.max(1),
            policy,
            frames: HashMap::new(),
            clock_order: Vec::new(),
            clock_hand: 0,
            tick: 0,
            stats: PoolStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Resident segment count.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Get the segment for `key`, loading it with `load` on a miss.
    pub fn get_or_load<E>(
        &mut self,
        key: FrameKey,
        load: impl FnOnce() -> Result<Vec<Tuple>, E>,
    ) -> Result<Arc<Vec<Tuple>>, E> {
        self.tick += 1;
        if let Some(frame) = self.frames.get_mut(&key) {
            self.stats.hits += 1;
            frame.last_used = self.tick;
            frame.referenced = true;
            return Ok(frame.data.clone());
        }
        self.stats.misses += 1;
        let data = Arc::new(load()?);
        if self.frames.len() >= self.capacity {
            self.evict_one();
        }
        self.frames.insert(
            key,
            Frame {
                data: data.clone(),
                last_used: self.tick,
                referenced: true,
            },
        );
        self.clock_order.push(key);
        Ok(data)
    }

    /// Drop a segment from the cache (e.g. after its file is deleted).
    pub fn invalidate(&mut self, key: FrameKey) {
        if self.frames.remove(&key).is_some() {
            self.clock_order.retain(|k| *k != key);
            if self.clock_hand >= self.clock_order.len() {
                self.clock_hand = 0;
            }
        }
    }

    fn evict_one(&mut self) {
        let victim = match self.policy {
            Replacement::Lru => self
                .frames
                .iter()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(k, _)| *k),
            Replacement::Clock => {
                let mut victim = None;
                // At most two sweeps: one clearing reference bits, one
                // finding a zero bit.
                for _ in 0..self.clock_order.len() * 2 {
                    if self.clock_order.is_empty() {
                        break;
                    }
                    let key = self.clock_order[self.clock_hand];
                    self.clock_hand = (self.clock_hand + 1) % self.clock_order.len();
                    if let Some(f) = self.frames.get_mut(&key) {
                        if f.referenced {
                            f.referenced = false;
                        } else {
                            victim = Some(key);
                            break;
                        }
                    }
                }
                victim.or_else(|| self.clock_order.first().copied())
            }
        };
        if let Some(key) = victim {
            self.frames.remove(&key);
            self.clock_order.retain(|k| *k != key);
            if self.clock_hand >= self.clock_order.len() && !self.clock_order.is_empty() {
                self.clock_hand = 0;
            }
            self.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::Value;

    fn seg(n: u64) -> Vec<Tuple> {
        vec![Tuple::at_seq(vec![Value::Int(n as i64)], n as i64)]
    }

    fn load_ok(n: u64) -> impl FnOnce() -> Result<Vec<Tuple>, std::io::Error> {
        move || Ok(seg(n))
    }

    #[test]
    fn hit_after_load() {
        let mut p = BufferPool::new(4, Replacement::Lru);
        p.get_or_load((0, 1), load_ok(1)).unwrap();
        p.get_or_load((0, 1), load_ok(1)).unwrap();
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = BufferPool::new(2, Replacement::Lru);
        p.get_or_load((0, 1), load_ok(1)).unwrap();
        p.get_or_load((0, 2), load_ok(2)).unwrap();
        p.get_or_load((0, 1), load_ok(1)).unwrap(); // refresh 1
        p.get_or_load((0, 3), load_ok(3)).unwrap(); // evicts 2
        assert_eq!(p.stats().evictions, 1);
        p.get_or_load((0, 1), load_ok(1)).unwrap();
        assert_eq!(p.stats().hits, 2, "1 stayed resident");
        p.get_or_load((0, 2), load_ok(2)).unwrap();
        assert_eq!(p.stats().misses, 4, "2 was the victim");
    }

    #[test]
    fn clock_gives_second_chances() {
        let mut p = BufferPool::new(2, Replacement::Clock);
        p.get_or_load((0, 1), load_ok(1)).unwrap();
        p.get_or_load((0, 2), load_ok(2)).unwrap();
        // Both referenced; inserting 3 sweeps, clears bits, evicts one.
        p.get_or_load((0, 3), load_ok(3)).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.stats().evictions, 1);
    }

    #[test]
    fn capacity_respected_under_churn() {
        let mut p = BufferPool::new(3, Replacement::Clock);
        for i in 0..100 {
            p.get_or_load((0, i), load_ok(i)).unwrap();
        }
        assert!(p.len() <= 3);
        assert_eq!(p.stats().misses, 100);
    }

    #[test]
    fn load_errors_propagate_without_caching() {
        let mut p = BufferPool::new(2, Replacement::Lru);
        let r: Result<_, std::io::Error> = p.get_or_load((0, 1), || {
            Err(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"))
        });
        assert!(r.is_err());
        assert_eq!(p.len(), 0);
        // A later good load works.
        p.get_or_load((0, 1), load_ok(1)).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn invalidate_removes_frame() {
        let mut p = BufferPool::new(2, Replacement::Lru);
        p.get_or_load((0, 1), load_ok(1)).unwrap();
        p.invalidate((0, 1));
        assert!(p.is_empty());
        p.get_or_load((0, 1), load_ok(1)).unwrap();
        assert_eq!(p.stats().misses, 2);
    }

    #[test]
    fn arc_survives_eviction() {
        let mut p = BufferPool::new(1, Replacement::Lru);
        let held = p.get_or_load((0, 1), load_ok(1)).unwrap();
        p.get_or_load((0, 2), load_ok(2)).unwrap(); // evicts 1
        assert_eq!(held[0].field(0), &Value::Int(1), "reader unaffected");
    }
}
