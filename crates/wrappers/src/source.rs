//! The ingress Source interface and basic adapters.

use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use tcq_common::rng::SplitMix64;
use tcq_common::{Clock, DataType, Result, Schema, TcqError, Timestamp, Tuple, Value};
use tcq_fjords::{DequeueResult, Fjord};

/// A failure reported by [`Source::try_poll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// A recoverable fault (network blip, remote hiccup): the Wrapper
    /// retries the source with exponential backoff instead of detaching
    /// it.
    Transient(String),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Transient(msg) => write!(f, "transient source error: {msg}"),
        }
    }
}

/// A non-blocking tuple source. `poll` returns whatever is ready (up to
/// `max` tuples) and must never block — "an overarching principle of
/// TelegraphCQ is to avoid blocking operations, save accesses to disk."
pub trait Source: Send {
    /// Fetch up to `max` ready tuples.
    fn poll(&mut self, max: usize) -> Vec<Tuple>;

    /// Fetch up to `max` ready tuples, reporting transient faults to the
    /// caller. The default delegates to [`Source::poll`]; fallible
    /// sources override this and the Wrapper drives retry/backoff off
    /// the error.
    fn try_poll(&mut self, max: usize) -> std::result::Result<Vec<Tuple>, SourceError> {
        Ok(self.poll(max))
    }

    /// Whether the source can never produce again.
    fn is_exhausted(&self) -> bool;

    /// The source's current low-watermark: a promise that every future
    /// tuple from this source has a timestamp strictly greater than the
    /// returned tick. Generalizes punctuation to out-of-order sources —
    /// the Wrapper forwards watermarks as punctuations each poll round.
    /// In-order sources may leave the default (`None`); their stream
    /// head already is the completeness proof.
    fn watermark(&self) -> Option<i64> {
        None
    }

    /// Source name for diagnostics.
    fn name(&self) -> &str {
        "source"
    }
}

/// A source wrapper that delivers its inner (timestamp-ordered) source's
/// tuples out of order, within a bounded disorder: each emitted tuple's
/// event timestamp lags the maximum timestamp already emitted by at most
/// `bound` ticks. The shuffle is drawn from a seeded SplitMix64 stream,
/// so a given `(seed, bound)` produces one deterministic arrival order —
/// the order-shuffle metamorphic harness replays on this.
///
/// A small slice of tuples become *late stragglers*: they are pinned in
/// the reorder buffer until the disorder bound forces them out, so the
/// worst-case lateness is actually exercised rather than just permitted.
///
/// [`Source::watermark`] reports `min(pending event times) - 1` (or the
/// stream head once the buffer drains), which is exactly the promise the
/// reorder buffer can keep.
pub struct DisorderSource<S: Source> {
    inner: S,
    rng: SplitMix64,
    bound: i64,
    /// Reorder buffer: (tuple, straggler?).
    hold: Vec<(Tuple, bool)>,
    /// Max timestamp pulled from the inner source so far.
    head: i64,
    name: String,
}

impl<S: Source> DisorderSource<S> {
    /// Wrap `inner`, shuffling arrivals within `bound` ticks of disorder.
    /// `bound <= 0` passes tuples through unshuffled.
    pub fn new(inner: S, seed: u64, bound: i64) -> DisorderSource<S> {
        let name = format!("disorder({})", inner.name());
        DisorderSource {
            inner,
            rng: SplitMix64::new(seed),
            bound: bound.max(0),
            hold: Vec::new(),
            head: i64::MIN,
            name,
        }
    }

    fn pending_min(&self) -> Option<i64> {
        self.hold.iter().map(|(t, _)| t.ts().ticks()).min()
    }
}

impl<S: Source> Source for DisorderSource<S> {
    fn poll(&mut self, max: usize) -> Vec<Tuple> {
        self.try_poll(max).unwrap_or_default()
    }

    fn try_poll(&mut self, max: usize) -> std::result::Result<Vec<Tuple>, SourceError> {
        let fresh = self.inner.try_poll(max.max(1))?;
        for t in fresh {
            self.head = self.head.max(t.ts().ticks());
            // ~1 in 8 tuples straggles to the edge of the bound.
            let straggler = self.bound > 0 && self.rng.next_u64().is_multiple_of(8);
            self.hold.push((t, straggler));
        }
        let mut out = Vec::new();
        // Keep roughly a bound's worth of tuples in the reorder buffer
        // while the inner source still produces; drain fully once it is
        // exhausted so our exhaustion implies full delivery.
        let target_hold = if self.inner.is_exhausted() {
            0
        } else {
            self.bound as usize
        };
        while self.hold.len() > target_hold && out.len() < max {
            let min_ts = self.pending_min().expect("hold is non-empty");
            // Any pending tuple within `bound` of the oldest may go next:
            // whatever order the rest are emitted in, nothing ends up more
            // than `bound` ticks behind the emitted head. Stragglers stay
            // pinned until they are the oldest tuple themselves.
            let candidates: Vec<usize> = self
                .hold
                .iter()
                .enumerate()
                .filter(|(_, (t, straggler))| {
                    let ts = t.ts().ticks();
                    ts <= min_ts.saturating_add(self.bound) && (!straggler || ts == min_ts)
                })
                .map(|(i, _)| i)
                .collect();
            let pick = if candidates.is_empty() {
                // Every in-bound tuple is a pinned straggler: force the
                // oldest one out (it has reached maximal lateness).
                self.hold
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (t, _))| t.ts().ticks())
                    .map(|(i, _)| i)
                    .expect("hold is non-empty")
            } else {
                candidates[(self.rng.next_u64() % candidates.len() as u64) as usize]
            };
            out.push(self.hold.swap_remove(pick).0);
        }
        Ok(out)
    }

    fn is_exhausted(&self) -> bool {
        self.inner.is_exhausted() && self.hold.is_empty()
    }

    fn watermark(&self) -> Option<i64> {
        if self.head == i64::MIN {
            return None;
        }
        // Everything still pending (or yet to be pulled from the ordered
        // inner source) has ts >= pending_min (resp. >= head, where equal
        // timestamps are still possible — hence the -1).
        Some(match self.pending_min() {
            Some(m) => m - 1,
            None => self.head - 1,
        })
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A source wrapper that injects deterministic transient faults: each
/// `try_poll` fails with probability `fail_rate`, drawn from a seeded
/// SplitMix64 stream. Drives the Wrapper retry/backoff tests the same
/// way the Flux fault schedules drive recovery tests.
pub struct FlakySource<S: Source> {
    inner: S,
    rng: SplitMix64,
    fail_rate: f64,
    name: String,
    failures: u64,
}

impl<S: Source> FlakySource<S> {
    /// Wrap `inner`, failing each poll with probability `fail_rate`.
    pub fn new(inner: S, seed: u64, fail_rate: f64) -> FlakySource<S> {
        let name = format!("flaky({})", inner.name());
        FlakySource {
            inner,
            rng: SplitMix64::new(seed),
            fail_rate,
            name,
            failures: 0,
        }
    }

    /// How many transient failures have been injected so far.
    pub fn failures(&self) -> u64 {
        self.failures
    }
}

impl<S: Source> Source for FlakySource<S> {
    fn poll(&mut self, max: usize) -> Vec<Tuple> {
        // Infallible view: a fault round yields no tuples (the inner
        // source is not polled, so nothing is lost).
        self.try_poll(max).unwrap_or_default()
    }

    fn try_poll(&mut self, max: usize) -> std::result::Result<Vec<Tuple>, SourceError> {
        if self.rng.next_f64() < self.fail_rate {
            self.failures += 1;
            return Err(SourceError::Transient(format!(
                "injected fault #{} in {}",
                self.failures, self.name
            )));
        }
        Ok(self.inner.poll(max))
    }

    fn is_exhausted(&self) -> bool {
        self.inner.is_exhausted()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A pull source over any iterator (the simplest "traditional federated"
/// source).
pub struct IterSource<I: Iterator<Item = Tuple> + Send> {
    iter: I,
    done: bool,
    name: String,
}

impl<I: Iterator<Item = Tuple> + Send> IterSource<I> {
    /// Wrap `iter`.
    pub fn new(name: impl Into<String>, iter: I) -> IterSource<I> {
        IterSource {
            iter,
            done: false,
            name: name.into(),
        }
    }
}

impl IterSource<std::vec::IntoIter<Tuple>> {
    /// A source over pre-stamped logical-time rows: each `(ticks,
    /// fields)` pair becomes a tuple at `Timestamp::logical(ticks)` —
    /// the shape replayable traces (e.g. simulation episodes) are
    /// written in.
    pub fn from_rows(
        name: impl Into<String>,
        rows: impl IntoIterator<Item = (i64, Vec<Value>)>,
    ) -> IterSource<std::vec::IntoIter<Tuple>> {
        let tuples: Vec<Tuple> = rows
            .into_iter()
            .map(|(t, fields)| Tuple::new(fields, Timestamp::logical(t)))
            .collect();
        IterSource::new(name, tuples.into_iter())
    }
}

impl<I: Iterator<Item = Tuple> + Send> Source for IterSource<I> {
    fn poll(&mut self, max: usize) -> Vec<Tuple> {
        let mut out = Vec::new();
        for _ in 0..max {
            match self.iter.next() {
                Some(t) => out.push(t),
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        out
    }

    fn is_exhausted(&self) -> bool {
        self.done
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A push-server source: external producers enqueue into a [`Fjord`]
/// (e.g. from a network thread); the wrapper polls it without blocking.
pub struct ChannelSource {
    queue: Fjord<Tuple>,
    name: String,
}

impl ChannelSource {
    /// A push-server source with a buffer of `capacity` tuples. Returns
    /// the source and the producer handle.
    pub fn new(name: impl Into<String>, capacity: usize) -> (ChannelSource, Fjord<Tuple>) {
        let queue = Fjord::with_capacity(capacity);
        (
            ChannelSource {
                queue: queue.clone(),
                name: name.into(),
            },
            queue,
        )
    }
}

impl Source for ChannelSource {
    fn poll(&mut self, max: usize) -> Vec<Tuple> {
        let mut out = Vec::new();
        for _ in 0..max {
            match self.queue.try_dequeue() {
                DequeueResult::Item(t) => out.push(t),
                DequeueResult::Empty | DequeueResult::Closed => break,
            }
        }
        out
    }

    fn is_exhausted(&self) -> bool {
        self.queue.is_finished()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A pull source reading CSV rows from a local file, typed by a schema.
///
/// Values failing to parse as the declared type are read as NULL, except
/// unparseable numeric strings in an INT/FLOAT column, which are an
/// error (silent data corruption is worse than a failed load). Rows are
/// stamped with a logical clock in arrival order.
pub struct CsvSource {
    reader: BufReader<File>,
    schema: Schema,
    clock: Clock,
    done: bool,
    name: String,
    line: String,
}

impl CsvSource {
    /// Open `path` with the given row schema.
    pub fn open(path: impl AsRef<Path>, schema: Schema) -> Result<CsvSource> {
        let file = File::open(path.as_ref())
            .map_err(|e| TcqError::StorageError(format!("{}: {e}", path.as_ref().display())))?;
        Ok(CsvSource {
            reader: BufReader::new(file),
            schema,
            clock: Clock::logical(),
            done: false,
            name: path.as_ref().display().to_string(),
            line: String::new(),
        })
    }

    fn parse_row(&self, line: &str) -> Result<Tuple> {
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if cells.len() != self.schema.len() {
            return Err(TcqError::StorageError(format!(
                "CSV row has {} cells, schema expects {}",
                cells.len(),
                self.schema.len()
            )));
        }
        let mut fields = Vec::with_capacity(cells.len());
        for (i, cell) in cells.iter().enumerate() {
            let ty = self.schema.field(i).data_type;
            let v =
                if cell.is_empty() {
                    Value::Null
                } else {
                    match ty {
                        DataType::Int => Value::Int(cell.parse().map_err(|_| {
                            TcqError::StorageError(format!("bad INT cell {cell:?}"))
                        })?),
                        DataType::Float => Value::Float(cell.parse().map_err(|_| {
                            TcqError::StorageError(format!("bad FLOAT cell {cell:?}"))
                        })?),
                        DataType::Bool => Value::Bool(cell.eq_ignore_ascii_case("true")),
                        _ => Value::str(*cell),
                    }
                };
            fields.push(v);
        }
        Ok(Tuple::new(fields, self.clock.now()))
    }
}

impl Source for CsvSource {
    fn poll(&mut self, max: usize) -> Vec<Tuple> {
        let mut out = Vec::new();
        while out.len() < max && !self.done {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) => self.done = true,
                Ok(_) => {
                    let line = self.line.trim_end();
                    if line.is_empty() {
                        continue;
                    }
                    self.clock.tick();
                    match self.parse_row(line) {
                        Ok(t) => out.push(t),
                        // A malformed row poisons the source rather than
                        // silently skipping data.
                        Err(_) => {
                            self.done = true;
                        }
                    }
                }
                Err(_) => self.done = true,
            }
        }
        out
    }

    fn is_exhausted(&self) -> bool {
        self.done
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use tcq_common::Field;

    #[test]
    fn iter_source_drains_and_exhausts() {
        let tuples: Vec<Tuple> = (0..5)
            .map(|i| Tuple::at_seq(vec![Value::Int(i)], i))
            .collect();
        let mut s = IterSource::new("it", tuples.into_iter());
        assert_eq!(s.poll(3).len(), 3);
        assert!(!s.is_exhausted());
        assert_eq!(s.poll(10).len(), 2);
        assert!(s.is_exhausted());
        assert_eq!(s.name(), "it");
    }

    #[test]
    fn from_rows_stamps_logical_time() {
        let mut s = IterSource::from_rows(
            "trace",
            vec![(3, vec![Value::Int(30)]), (7, vec![Value::Int(70)])],
        );
        let out = s.poll(10);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].ts(), Timestamp::logical(3));
        assert_eq!(out[1].ts(), Timestamp::logical(7));
        assert_eq!(out[1].fields()[0], Value::Int(70));
    }

    #[test]
    fn channel_source_is_push_nonblocking() {
        let (mut s, producer) = ChannelSource::new("net", 8);
        assert!(s.poll(4).is_empty(), "poll never blocks");
        producer.try_enqueue(Tuple::at_seq(vec![Value::Int(1)], 1));
        producer.try_enqueue(Tuple::at_seq(vec![Value::Int(2)], 2));
        assert_eq!(s.poll(10).len(), 2);
        assert!(!s.is_exhausted());
        producer.close();
        assert!(s.is_exhausted());
    }

    fn csv_schema() -> Schema {
        Schema::qualified(
            "csp",
            vec![
                Field::new("day", DataType::Int),
                Field::new("sym", DataType::Str),
                Field::new("price", DataType::Float),
            ],
        )
    }

    fn write_csv(name: &str, body: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("tcq-csv-{}-{name}.csv", std::process::id()));
        let mut f = File::create(&p).unwrap();
        f.write_all(body.as_bytes()).unwrap();
        p
    }

    #[test]
    fn csv_source_parses_typed_rows() {
        let p = write_csv("ok", "1, MSFT, 50.5\n2, IBM, 80.0\n\n3, MSFT, 51.0\n");
        let mut s = CsvSource::open(&p, csv_schema()).unwrap();
        let rows = s.poll(10);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].field(0), &Value::Int(1));
        assert_eq!(rows[0].field(1), &Value::str("MSFT"));
        assert_eq!(rows[0].field(2), &Value::Float(50.5));
        // Logical stamps follow row order.
        assert!(rows[0].ts() < rows[2].ts());
        assert!(s.is_exhausted());
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn csv_source_empty_cells_are_null() {
        let p = write_csv("null", "1, , 50.5\n");
        let mut s = CsvSource::open(&p, csv_schema()).unwrap();
        let rows = s.poll(10);
        assert_eq!(rows[0].field(1), &Value::Null);
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn csv_source_bad_numeric_poisons() {
        let p = write_csv("bad", "1, MSFT, 50.5\nnotanint, IBM, 80.0\n3, A, 1.0\n");
        let mut s = CsvSource::open(&p, csv_schema()).unwrap();
        let rows = s.poll(10);
        assert_eq!(rows.len(), 1, "stops at the malformed row");
        assert!(s.is_exhausted());
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn csv_missing_file_errors() {
        assert!(CsvSource::open("/nonexistent/x.csv", csv_schema()).is_err());
    }

    #[test]
    fn flaky_source_faults_deterministically_and_loses_nothing() {
        let make = || {
            let tuples: Vec<Tuple> = (0..20)
                .map(|i| Tuple::at_seq(vec![Value::Int(i)], i))
                .collect();
            FlakySource::new(IterSource::new("it", tuples.into_iter()), 42, 0.5)
        };
        let mut a = make();
        let mut got = Vec::new();
        let mut failures = 0;
        while !a.is_exhausted() {
            match a.try_poll(4) {
                Ok(ts) => got.extend(ts),
                Err(SourceError::Transient(_)) => failures += 1,
            }
        }
        assert_eq!(got.len(), 20, "faulted rounds never consume inner tuples");
        assert!(failures > 0, "fail_rate 0.5 must fire across many rounds");
        assert_eq!(a.failures(), failures);

        // Same seed → identical fault schedule.
        let mut b = make();
        let mut b_failures = 0;
        while !b.is_exhausted() {
            if b.try_poll(4).is_err() {
                b_failures += 1;
            }
        }
        assert_eq!(b_failures, failures);
        assert!(a.name().contains("flaky"));
    }

    #[test]
    fn flaky_source_infallible_poll_swallows_faults() {
        let tuples: Vec<Tuple> = (0..8)
            .map(|i| Tuple::at_seq(vec![Value::Int(i)], i))
            .collect();
        let mut s = FlakySource::new(IterSource::new("it", tuples.into_iter()), 7, 0.5);
        let mut got = 0;
        for _ in 0..200 {
            got += s.poll(4).len();
            if s.is_exhausted() {
                break;
            }
        }
        assert_eq!(got, 8);
    }

    fn drain_disordered(seed: u64, bound: i64, n: i64) -> (Vec<Tuple>, Vec<(usize, Option<i64>)>) {
        let tuples: Vec<Tuple> = (0..n)
            .map(|i| Tuple::at_seq(vec![Value::Int(i)], i))
            .collect();
        let mut s = DisorderSource::new(IterSource::new("it", tuples.into_iter()), seed, bound);
        let mut out = Vec::new();
        let mut watermarks = Vec::new();
        while !s.is_exhausted() {
            out.extend(s.poll(4));
            watermarks.push((out.len(), s.watermark()));
        }
        (out, watermarks)
    }

    #[test]
    fn disorder_source_shuffles_within_bound_and_loses_nothing() {
        let (out, watermarks) = drain_disordered(11, 4, 40);
        assert_eq!(out.len(), 40, "every tuple is delivered");
        let mut ticks: Vec<i64> = out.iter().map(|t| t.ts().ticks()).collect();
        let shuffled = ticks.windows(2).any(|w| w[0] > w[1]);
        assert!(shuffled, "bound 4 over 40 tuples must reorder something");
        // Bounded disorder: nothing lags the emitted head by more than 4.
        let mut head = ticks[0];
        for &t in &ticks {
            assert!(head - t <= 4, "tuple at {t} lags head {head} beyond bound");
            head = head.max(t);
        }
        ticks.sort_unstable();
        assert_eq!(ticks, (0..40).collect::<Vec<_>>());
        // Watermarks only promise what later arrivals keep: after a
        // watermark of w, no tuple with ts <= w may still arrive.
        for (emitted, wm) in watermarks {
            if let Some(w) = wm {
                assert!(
                    out[emitted..].iter().all(|t| t.ts().ticks() > w),
                    "tuple arrived at or below watermark {w}"
                );
            }
        }
    }

    #[test]
    fn disorder_source_is_deterministic_per_seed() {
        let (a, _) = drain_disordered(77, 3, 30);
        let (b, _) = drain_disordered(77, 3, 30);
        let (c, _) = drain_disordered(78, 3, 30);
        let order = |v: &[Tuple]| v.iter().map(|t| t.ts().ticks()).collect::<Vec<_>>();
        assert_eq!(order(&a), order(&b), "same seed, same arrival order");
        assert_ne!(order(&a), order(&c), "different seed, different shuffle");
    }

    #[test]
    fn disorder_bound_zero_passes_through_in_order() {
        let (out, _) = drain_disordered(5, 0, 20);
        let ticks: Vec<i64> = out.iter().map(|t| t.ts().ticks()).collect();
        assert_eq!(ticks, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn default_watermark_is_none() {
        let s = IterSource::new("it", Vec::new().into_iter());
        assert_eq!(s.watermark(), None);
    }

    #[test]
    fn default_try_poll_delegates_to_poll() {
        let tuples: Vec<Tuple> = (0..3)
            .map(|i| Tuple::at_seq(vec![Value::Int(i)], i))
            .collect();
        let mut s = IterSource::new("it", tuples.into_iter());
        assert_eq!(s.try_poll(10).unwrap().len(), 3);
    }
}
