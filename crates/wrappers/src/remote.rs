//! A latency-injected remote index: the TeSS-wrapped web form of the
//! paper's SteM example, simulated.

use std::collections::HashMap;

use tcq_common::rng::SplitMix64;
use tcq_common::{Tuple, Value};
use tcq_stems::{IndexSource, Key};

/// An asynchronous index over a local table that answers each lookup
/// after a (seeded-random) number of `poll` rounds within
/// `[min_latency, max_latency]`, modelling remote round-trip variance.
pub struct SimulatedRemoteIndex {
    index: HashMap<Key, Vec<Tuple>>,
    rng: SplitMix64,
    min_latency: u32,
    max_latency: u32,
    in_flight: Vec<(u64, Key, u32)>,
    lookups: u64,
}

impl SimulatedRemoteIndex {
    /// Build over `rows`, keyed on `key_cols`, with per-lookup latency
    /// uniform in `[min_latency, max_latency]` poll rounds.
    pub fn new(
        seed: u64,
        rows: Vec<Tuple>,
        key_cols: &[usize],
        min_latency: u32,
        max_latency: u32,
    ) -> SimulatedRemoteIndex {
        let mut index: HashMap<Key, Vec<Tuple>> = HashMap::new();
        for t in rows {
            index
                .entry(Key::from_tuple(&t, key_cols))
                .or_default()
                .push(t);
        }
        SimulatedRemoteIndex {
            index,
            rng: SplitMix64::new(seed),
            min_latency,
            max_latency: max_latency.max(min_latency),
            in_flight: Vec::new(),
            lookups: 0,
        }
    }

    /// Total lookups ever submitted (the E3 "expensive probe" counter).
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Submitted-but-unanswered lookups — inherent mirror of
    /// [`IndexSource::pending`] so callers reading the gauge don't need
    /// the trait in scope.
    pub fn pending(&self) -> usize {
        self.in_flight.len()
    }
}

impl IndexSource for SimulatedRemoteIndex {
    fn submit(&mut self, req_id: u64, key: Vec<Value>) {
        self.lookups += 1;
        let span = (self.max_latency - self.min_latency + 1) as u64;
        let latency = self.min_latency + self.rng.next_below(span) as u32;
        self.in_flight
            .push((req_id, Key::from_values(&key), latency));
    }

    fn poll(&mut self) -> Vec<(u64, Vec<Tuple>)> {
        let mut done = Vec::new();
        self.in_flight.retain_mut(|(req, key, remaining)| {
            if *remaining == 0 {
                let matches = self.index.get(key).cloned().unwrap_or_default();
                done.push((*req, matches));
                false
            } else {
                *remaining -= 1;
                true
            }
        });
        done
    }

    fn pending(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Vec<Tuple> {
        (0..10)
            .map(|i| Tuple::at_seq(vec![Value::Int(i % 3), Value::Int(i)], i))
            .collect()
    }

    #[test]
    fn lookups_answer_after_latency() {
        let mut idx = SimulatedRemoteIndex::new(1, table(), &[0], 2, 2);
        idx.submit(7, vec![Value::Int(1)]);
        assert!(idx.poll().is_empty());
        assert!(idx.poll().is_empty());
        let done = idx.poll();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 7);
        assert!(!done[0].1.is_empty());
        assert_eq!(idx.pending(), 0);
    }

    #[test]
    fn missing_keys_answer_empty() {
        let mut idx = SimulatedRemoteIndex::new(1, table(), &[0], 0, 0);
        idx.submit(1, vec![Value::Int(99)]);
        let done = idx.poll();
        assert_eq!(done[0].1.len(), 0);
    }

    #[test]
    fn variable_latency_within_bounds() {
        let mut idx = SimulatedRemoteIndex::new(3, table(), &[0], 1, 5);
        for i in 0..50 {
            idx.submit(i, vec![Value::Int(0)]);
        }
        let mut rounds = 0;
        let mut completed = 0;
        while completed < 50 {
            rounds += 1;
            assert!(rounds <= 6, "everything must complete within max latency");
            completed += idx.poll().len();
        }
        assert!(rounds >= 2, "min latency respected");
        assert_eq!(idx.lookups(), 50);
    }

    #[test]
    fn works_with_async_index_join() {
        use tcq_stems::AsyncIndexJoin;
        let idx = SimulatedRemoteIndex::new(5, table(), &[0], 1, 3);
        let mut join = AsyncIndexJoin::new(vec![0], vec![0], Box::new(idx));
        assert!(join
            .push_probe(Tuple::at_seq(vec![Value::Int(1)], 100))
            .is_empty());
        let mut out = Vec::new();
        for _ in 0..5 {
            out.extend(join.poll());
        }
        assert_eq!(out.len(), 3, "key 1 matches rows 1, 4, 7");
        // Cache hit on the second probe: immediate results.
        let hits = join.push_probe(Tuple::at_seq(vec![Value::Int(1)], 101));
        assert_eq!(hits.len(), 3);
    }
}
