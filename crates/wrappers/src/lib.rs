//! # tcq-wrappers
//!
//! Ingress and egress operators (§2.1 "Ingress and Caching" and §4.2.3
//! "Ingress Operators" / §4.3 "Egress Modules" of the TelegraphCQ
//! paper).
//!
//! The paper's wrappers normalize external sources — sensor proxies, the
//! TeSS screen scraper, P2P proxies — into tuple streams hosted in a
//! separate Wrapper process "where they can be accessed in a
//! non-blocking manner (à la Fjords)". Live external feeds are outside a
//! reproduction's reach, so this crate provides (per DESIGN.md §2) the
//! synthetic equivalents that exercise the same code paths:
//!
//! * [`source::Source`] — the non-blocking ingress interface: `poll`
//!   yields whatever is ready, never blocks.
//! * [`gen`] — deterministic workload generators: stock tickers
//!   ([`gen::StockTicker`], the paper's `ClosingStockPrices` schema),
//!   network packets with Zipf-skewed keys ([`gen::PacketGen`], for the
//!   Flux experiments), sensor readings ([`gen::SensorGen`]), and a
//!   drifting-selectivity generator ([`gen::DriftGen`], for the eddy
//!   adaptivity experiments).
//! * [`source::CsvSource`] — a pull source over local files (the "local
//!   file reader" of Figure 1).
//! * [`source::ChannelSource`] / [`source::IterSource`] — push-server
//!   and pull adapters.
//! * [`remote::SimulatedRemoteIndex`] — a latency-injected index over a
//!   local table, implementing [`tcq_stems::IndexSource`]; the stand-in
//!   for "a web lookup form wrapped by TeSS" in the SteM hybrid-join
//!   experiment (E3).
//! * [`egress`] — push egress (streamed delivery via a Fjord) and pull
//!   egress (logged results fetched on demand).

//!
//! ## Example
//!
//! ```
//! use tcq_wrappers::{Source, StockTicker};
//!
//! let mut ticker = StockTicker::with_symbols(7, vec!["MSFT", "IBM"], Some(3));
//! let quotes = ticker.poll(100);
//! assert_eq!(quotes.len(), 6); // 3 days x 2 symbols
//! assert!(ticker.is_exhausted());
//! ```

pub mod egress;
pub mod gen;
pub mod remote;
pub mod source;

pub use egress::{PullEgress, PushEgress};
pub use gen::{DriftGen, PacketGen, SensorGen, StockTicker};
pub use remote::SimulatedRemoteIndex;
pub use source::{
    ChannelSource, CsvSource, DisorderSource, FlakySource, IterSource, Source, SourceError,
};
