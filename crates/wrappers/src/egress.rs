//! Egress operators: delivering results to clients (§4.3 "Egress
//! Modules").
//!
//! "Push-based egress operators support interaction where clients are
//! continually streamed query results, while pull-based egress operators
//! may log data and support intermittent retrieval of results."

use std::collections::VecDeque;

use tcq_common::Tuple;
use tcq_fjords::{EnqueueResult, Fjord};

/// Push egress: results stream into a bounded Fjord that a client
/// drains. When the client falls behind (queue full), the oldest results
/// are shed and counted — the QoS "knob" surface the paper discusses for
/// clients that cannot keep up.
pub struct PushEgress {
    queue: Fjord<Tuple>,
    shed: u64,
    delivered: u64,
}

impl PushEgress {
    /// An egress with a client buffer of `capacity` results. Returns the
    /// egress and the client's consuming handle.
    pub fn new(capacity: usize) -> (PushEgress, Fjord<Tuple>) {
        let queue = Fjord::with_capacity(capacity);
        (
            PushEgress {
                queue: queue.clone(),
                shed: 0,
                delivered: 0,
            },
            queue,
        )
    }

    /// Deliver one result; sheds the oldest buffered result if the
    /// client is behind.
    pub fn deliver(&mut self, t: Tuple) {
        match self.queue.try_enqueue(t) {
            EnqueueResult::Ok => self.delivered += 1,
            EnqueueResult::Full(t) => {
                // Shed oldest, retry once.
                let _ = self.queue.try_dequeue();
                self.shed += 1;
                if self.queue.try_enqueue(t).is_ok() {
                    self.delivered += 1;
                }
            }
            EnqueueResult::Closed(_) => {}
        }
    }

    /// Results shed because the client lagged.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Results successfully buffered for the client.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Signal end of results.
    pub fn close(&self) {
        self.queue.close();
    }
}

/// Pull egress: results are logged and fetched on demand, PSoup-style
/// ("users can register queries with the system and return
/// intermittently to retrieve the latest answers").
#[derive(Debug, Default)]
pub struct PullEgress {
    log: VecDeque<Tuple>,
    /// Retain at most this many results (0 = unbounded).
    retain: usize,
    dropped: u64,
}

impl PullEgress {
    /// A pull egress retaining up to `retain` results (0 = unbounded).
    pub fn new(retain: usize) -> PullEgress {
        PullEgress {
            log: VecDeque::new(),
            retain,
            dropped: 0,
        }
    }

    /// Log a result.
    pub fn deliver(&mut self, t: Tuple) {
        self.log.push_back(t);
        if self.retain > 0 && self.log.len() > self.retain {
            self.log.pop_front();
            self.dropped += 1;
        }
    }

    /// Fetch (and consume) up to `max` logged results.
    pub fn fetch(&mut self, max: usize) -> Vec<Tuple> {
        let n = max.min(self.log.len());
        self.log.drain(..n).collect()
    }

    /// Peek without consuming.
    pub fn peek(&self) -> impl Iterator<Item = &Tuple> {
        self.log.iter()
    }

    /// Results currently retained.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// True iff no results are pending.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Results dropped by the retention bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::Value;
    use tcq_fjords::DequeueResult;

    fn t(i: i64) -> Tuple {
        Tuple::at_seq(vec![Value::Int(i)], i)
    }

    #[test]
    fn push_egress_streams_to_client() {
        let (mut e, client) = PushEgress::new(8);
        e.deliver(t(1));
        e.deliver(t(2));
        assert_eq!(client.try_dequeue(), DequeueResult::Item(t(1)));
        assert_eq!(client.try_dequeue(), DequeueResult::Item(t(2)));
        assert_eq!(e.delivered(), 2);
        assert_eq!(e.shed(), 0);
        e.close();
        assert_eq!(client.try_dequeue(), DequeueResult::Closed);
    }

    #[test]
    fn push_egress_sheds_oldest_when_client_lags() {
        let (mut e, client) = PushEgress::new(2);
        for i in 1..=5 {
            e.deliver(t(i));
        }
        assert_eq!(e.shed(), 3);
        // The two newest survive.
        assert_eq!(client.try_dequeue(), DequeueResult::Item(t(4)));
        assert_eq!(client.try_dequeue(), DequeueResult::Item(t(5)));
    }

    #[test]
    fn pull_egress_logs_and_fetches() {
        let mut e = PullEgress::new(0);
        for i in 1..=5 {
            e.deliver(t(i));
        }
        assert_eq!(e.len(), 5);
        let got = e.fetch(3);
        assert_eq!(got, vec![t(1), t(2), t(3)]);
        assert_eq!(e.len(), 2);
        assert_eq!(e.fetch(10), vec![t(4), t(5)]);
        assert!(e.is_empty());
    }

    #[test]
    fn pull_egress_retention_bound() {
        let mut e = PullEgress::new(3);
        for i in 1..=10 {
            e.deliver(t(i));
        }
        assert_eq!(e.len(), 3);
        assert_eq!(e.dropped(), 7);
        assert_eq!(e.peek().next(), Some(&t(8)));
    }
}
