//! Deterministic synthetic stream generators.
//!
//! These play the role of the paper's live sources, with the knobs the
//! experiments need: rate (tuples per poll), key skew (Zipf), and
//! mid-stream distribution drift.

use tcq_common::rng::SplitMix64;
use tcq_common::{Clock, Timestamp, Tuple, Value};

use crate::source::Source;

/// Daily closing stock prices — the paper's running example schema:
/// `(timestamp: INT, stockSymbol: STR, closingPrice: FLOAT)`.
///
/// Each trading day emits one quote per symbol; prices follow a
/// per-symbol random walk. Timestamps are the trading day (logical
/// domain), matching §4.1 ("one entry for every trading day for every
/// stock symbol").
pub struct StockTicker {
    symbols: Vec<&'static str>,
    prices: Vec<f64>,
    rng: SplitMix64,
    day: i64,
    next_symbol: usize,
    max_days: Option<i64>,
}

/// Symbols used by examples and benches.
pub const DEFAULT_SYMBOLS: [&str; 8] =
    ["MSFT", "IBM", "ORCL", "SUNW", "INTC", "AAPL", "DELL", "HPQ"];

impl StockTicker {
    /// A ticker over the default symbols, running forever.
    pub fn new(seed: u64) -> StockTicker {
        StockTicker::with_symbols(seed, DEFAULT_SYMBOLS.to_vec(), None)
    }

    /// A ticker over `symbols`, stopping after `max_days` when given.
    pub fn with_symbols(
        seed: u64,
        symbols: Vec<&'static str>,
        max_days: Option<i64>,
    ) -> StockTicker {
        let n = symbols.len();
        StockTicker {
            symbols,
            prices: vec![50.0; n],
            rng: SplitMix64::new(seed),
            day: 1,
            next_symbol: 0,
            max_days,
        }
    }
}

impl Source for StockTicker {
    fn poll(&mut self, max: usize) -> Vec<Tuple> {
        let mut out = Vec::new();
        while out.len() < max && !self.is_exhausted() {
            let sym = self.symbols[self.next_symbol];
            let price = &mut self.prices[self.next_symbol];
            // Random walk with a floor: +/- up to 2.5%.
            let delta = (self.rng.next_f64() - 0.5) * 0.05 * *price;
            *price = (*price + delta).max(1.0);
            out.push(Tuple::new(
                vec![
                    Value::Int(self.day),
                    Value::str(sym),
                    Value::Float((*price * 100.0).round() / 100.0),
                ],
                Timestamp::logical(self.day),
            ));
            self.next_symbol += 1;
            if self.next_symbol == self.symbols.len() {
                self.next_symbol = 0;
                self.day += 1;
            }
        }
        out
    }

    fn is_exhausted(&self) -> bool {
        self.max_days.is_some_and(|m| self.day > m)
    }

    fn name(&self) -> &str {
        "ClosingStockPrices"
    }
}

/// Network packet headers `(src: INT, dst: INT, port: INT, bytes: INT)`
/// with Zipf-skewed destination addresses — the skewed-key workload for
/// the Flux load-balancing experiment (E6).
pub struct PacketGen {
    rng: SplitMix64,
    clock: Clock,
    /// Inverse-CDF table over destination ranks.
    cdf: Vec<f64>,
    n_keys: usize,
}

impl PacketGen {
    /// Packets over `n_keys` destinations with Zipf parameter `theta`
    /// (0.0 = uniform; 1.0 = heavily skewed).
    pub fn new(seed: u64, n_keys: usize, theta: f64) -> PacketGen {
        let n_keys = n_keys.max(1);
        let mut weights: Vec<f64> = (1..=n_keys).map(|r| 1.0 / (r as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        PacketGen {
            rng: SplitMix64::new(seed),
            clock: Clock::logical(),
            cdf: weights,
            n_keys,
        }
    }

    fn sample_key(&mut self) -> i64 {
        let u = self.rng.next_f64();
        // Binary search the CDF.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.n_keys - 1) as i64
    }
}

impl Source for PacketGen {
    fn poll(&mut self, max: usize) -> Vec<Tuple> {
        (0..max)
            .map(|_| {
                let dst = self.sample_key();
                let src = self.rng.next_below(1 << 16) as i64;
                let port = [22, 53, 80, 443, 8080][self.rng.next_below(5) as usize];
                let bytes = 40 + self.rng.next_below(1460) as i64;
                Tuple::new(
                    vec![
                        Value::Int(src),
                        Value::Int(dst),
                        Value::Int(port),
                        Value::Int(bytes),
                    ],
                    self.clock.tick(),
                )
            })
            .collect()
    }

    fn is_exhausted(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "packets"
    }
}

/// Sensor readings `(sensor_id: INT, reading: FLOAT)`: per-sensor slow
/// sinusoidal drift plus noise.
pub struct SensorGen {
    rng: SplitMix64,
    clock: Clock,
    n_sensors: usize,
    next: usize,
    step: u64,
}

impl SensorGen {
    /// Readings from `n_sensors` sensors, round-robin.
    pub fn new(seed: u64, n_sensors: usize) -> SensorGen {
        SensorGen {
            rng: SplitMix64::new(seed),
            clock: Clock::logical(),
            n_sensors: n_sensors.max(1),
            next: 0,
            step: 0,
        }
    }
}

impl Source for SensorGen {
    fn poll(&mut self, max: usize) -> Vec<Tuple> {
        (0..max)
            .map(|_| {
                let id = self.next;
                self.next = (self.next + 1) % self.n_sensors;
                self.step += 1;
                let phase = self.step as f64 / 500.0 + id as f64;
                let reading = 20.0 + 5.0 * phase.sin() + (self.rng.next_f64() - 0.5);
                Tuple::new(
                    vec![Value::Int(id as i64), Value::Float(reading)],
                    self.clock.tick(),
                )
            })
            .collect()
    }

    fn is_exhausted(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "sensors"
    }
}

/// The drifting-selectivity workload of the eddy experiments (E1/E7):
/// tuples `(a: INT, b: INT)` where `a` and `b` are uniform in
/// `[0, 100)`, except that at `switch_at` tuples the distributions swap
/// ranges, flipping which of two threshold filters is selective.
pub struct DriftGen {
    rng: SplitMix64,
    clock: Clock,
    emitted: u64,
    /// After this many tuples, the distributions swap.
    pub switch_at: u64,
}

impl DriftGen {
    /// A generator swapping distributions after `switch_at` tuples.
    pub fn new(seed: u64, switch_at: u64) -> DriftGen {
        DriftGen {
            rng: SplitMix64::new(seed),
            clock: Clock::logical(),
            emitted: 0,
            switch_at,
        }
    }
}

impl Source for DriftGen {
    fn poll(&mut self, max: usize) -> Vec<Tuple> {
        (0..max)
            .map(|_| {
                let swapped = self.emitted >= self.switch_at;
                self.emitted += 1;
                // Phase 1: a is small (filter `a > 90` is selective),
                //          b is large (filter `b > 10` passes most).
                // Phase 2: swapped.
                let small = self.rng.next_below(100) as i64 / 2; // [0, 50)
                let large = 50 + self.rng.next_below(100) as i64 / 2; // [50, 100)
                let (a, b) = if swapped {
                    (large, small)
                } else {
                    (small, large)
                };
                Tuple::new(vec![Value::Int(a), Value::Int(b)], self.clock.tick())
            })
            .collect()
    }

    fn is_exhausted(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "drift"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_ticker_covers_all_symbols_per_day() {
        let mut g = StockTicker::new(7);
        let rows = g.poll(16);
        assert_eq!(rows.len(), 16);
        // First 8 rows are day 1, one per symbol.
        let day1: Vec<&str> = rows[..8]
            .iter()
            .map(|t| t.field(1).as_str().unwrap())
            .collect();
        assert_eq!(day1, DEFAULT_SYMBOLS.to_vec());
        assert!(rows[..8].iter().all(|t| t.ts().ticks() == 1));
        assert!(rows[8..].iter().all(|t| t.ts().ticks() == 2));
    }

    #[test]
    fn stock_ticker_deterministic_and_bounded() {
        let a: Vec<Tuple> = StockTicker::new(3).poll(100);
        let b: Vec<Tuple> = StockTicker::new(3).poll(100);
        assert_eq!(a, b);
        let mut lim = StockTicker::with_symbols(1, vec!["A"], Some(5));
        assert_eq!(lim.poll(100).len(), 5);
        assert!(lim.is_exhausted());
        assert!(lim.poll(10).is_empty());
    }

    #[test]
    fn stock_prices_stay_positive() {
        let mut g = StockTicker::new(99);
        for t in g.poll(10_000) {
            assert!(t.field(2).as_float().unwrap() >= 1.0);
        }
    }

    #[test]
    fn packet_gen_zipf_skew() {
        let mut uniform = PacketGen::new(5, 100, 0.0);
        let mut skewed = PacketGen::new(5, 100, 1.2);
        let count_top = |g: &mut PacketGen| {
            let mut top = 0;
            for t in g.poll(10_000) {
                if t.field(1).as_int().unwrap() == 0 {
                    top += 1;
                }
            }
            top
        };
        let u = count_top(&mut uniform);
        let s = count_top(&mut skewed);
        assert!(
            s > u * 5,
            "rank-0 key should dominate under skew: uniform={u}, skewed={s}"
        );
    }

    #[test]
    fn sensor_gen_rotates_sensors() {
        let mut g = SensorGen::new(1, 4);
        let rows = g.poll(8);
        let ids: Vec<i64> = rows.iter().map(|t| t.field(0).as_int().unwrap()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn drift_gen_swaps_distributions() {
        let mut g = DriftGen::new(11, 1000);
        let phase1 = g.poll(1000);
        let phase2 = g.poll(1000);
        let mean_a = |rows: &[Tuple]| {
            rows.iter()
                .map(|t| t.field(0).as_int().unwrap() as f64)
                .sum::<f64>()
                / rows.len() as f64
        };
        assert!(mean_a(&phase1) < 30.0, "a starts small");
        assert!(mean_a(&phase2) > 70.0, "a becomes large after the switch");
    }

    #[test]
    fn generators_stamp_monotone_timestamps() {
        let mut g = PacketGen::new(2, 10, 0.5);
        let rows = g.poll(100);
        for w in rows.windows(2) {
            assert!(w[0].ts() < w[1].ts());
        }
    }
}
