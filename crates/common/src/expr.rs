//! Physical scalar expressions, evaluated against tuples.
//!
//! [`Expr`] is the *resolved* expression form: column references are
//! positions into the tuple, produced by the analyzer in `tcq-sql` (or
//! built directly by tests and internal operators). Boolean evaluation
//! follows SQL three-valued logic; a predicate "passes" only when it
//! evaluates to `TRUE` (UNKNOWN filters the tuple out, as in SQL).
//!
//! The CACQ grouped-filter optimization needs to recognize
//! *single-variable boolean factors* — comparisons of one column against a
//! constant — so [`Expr::as_single_column_cmp`] and
//! [`Expr::conjuncts`] are provided here, next to the evaluator they must
//! agree with.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{Result, TcqError};
use crate::tuple::Tuple;
use crate::value::Value;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply this operator to an [`Ordering`].
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        };
        f.write_str(s)
    }
}

/// A resolved scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Field at a position in the input tuple.
    Column(usize),
    /// A constant.
    Literal(Value),
    /// Comparison of two sub-expressions (SQL 3VL).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic on two sub-expressions.
    Arith(BinOp, Box<Expr>, Box<Expr>),
    /// Logical AND (3VL).
    And(Box<Expr>, Box<Expr>),
    /// Logical OR (3VL).
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT (3VL).
    Not(Box<Expr>),
    /// `expr IS NULL`.
    IsNull(Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
}

impl Expr {
    /// Shorthand for a column reference.
    pub fn col(idx: usize) -> Expr {
        Expr::Column(idx)
    }

    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// `self <op> other` comparison.
    pub fn cmp(self, op: CmpOp, other: Expr) -> Expr {
        Expr::Cmp(op, Box::new(self), Box::new(other))
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// Evaluate against a tuple (the row evaluator).
    ///
    /// This is the documented fallback for expressions the vectorized
    /// evaluator (`Expr::eval_pred_batch` in `vexpr`) cannot handle:
    /// mixed-type columns, timestamps, and boolean-valued
    /// sub-expressions in value positions. Hot predicates go through the
    /// columnar path; projection at egress and the non-vectorizable
    /// remainder come through here.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value> {
        match self {
            Expr::Column(idx) => tuple.get(*idx).cloned().ok_or_else(|| {
                TcqError::ExecError(format!(
                    "column index {idx} out of range for arity {}",
                    tuple.arity()
                ))
            }),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Cmp(op, a, b) => {
                let (va, vb) = (a.eval(tuple)?, b.eval(tuple)?);
                Ok(match va.sql_cmp(&vb) {
                    Some(ord) => Value::Bool(op.matches(ord)),
                    None => Value::Null,
                })
            }
            Expr::Arith(op, a, b) => arith(*op, &a.eval(tuple)?, &b.eval(tuple)?),
            Expr::And(a, b) => {
                let va = a.eval(tuple)?;
                let vb = b.eval(tuple)?;
                Ok(tvl_and(&va, &vb))
            }
            Expr::Or(a, b) => {
                let va = a.eval(tuple)?;
                let vb = b.eval(tuple)?;
                Ok(tvl_or(&va, &vb))
            }
            Expr::Not(a) => match a.eval(tuple)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                Value::Null => Ok(Value::Null),
                other => Err(TcqError::TypeError(format!(
                    "NOT applied to non-boolean {other}"
                ))),
            },
            Expr::IsNull(a) => Ok(Value::Bool(a.eval(tuple)?.is_null())),
            Expr::Neg(a) => match a.eval(tuple)? {
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                Value::Null => Ok(Value::Null),
                other => Err(TcqError::TypeError(format!("cannot negate {other}"))),
            },
        }
    }

    /// Evaluate as a predicate: `true` only when the result is SQL TRUE.
    pub fn eval_pred(&self, tuple: &Tuple) -> Result<bool> {
        Ok(self.eval(tuple)?.as_bool().unwrap_or(false))
    }

    /// Collect the set of column positions this expression reads.
    pub fn columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit_columns(&mut |c| out.push(c));
        out.sort_unstable();
        out.dedup();
        out
    }

    fn visit_columns(&self, f: &mut impl FnMut(usize)) {
        match self {
            Expr::Column(i) => f(*i),
            Expr::Literal(_) => {}
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.visit_columns(f);
                b.visit_columns(f);
            }
            Expr::Not(a) | Expr::IsNull(a) | Expr::Neg(a) => a.visit_columns(f),
        }
    }

    /// Rewrite column references through `map` (used to re-base an
    /// expression onto a join output or a projected layout). Returns
    /// `None` when a referenced column has no mapping.
    pub fn remap_columns(&self, map: &impl Fn(usize) -> Option<usize>) -> Option<Expr> {
        Some(match self {
            Expr::Column(i) => Expr::Column(map(*i)?),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(a.remap_columns(map)?),
                Box::new(b.remap_columns(map)?),
            ),
            Expr::Arith(op, a, b) => Expr::Arith(
                *op,
                Box::new(a.remap_columns(map)?),
                Box::new(b.remap_columns(map)?),
            ),
            Expr::And(a, b) => a.remap_columns(map)?.and(b.remap_columns(map)?),
            Expr::Or(a, b) => a.remap_columns(map)?.or(b.remap_columns(map)?),
            Expr::Not(a) => Expr::Not(Box::new(a.remap_columns(map)?)),
            Expr::IsNull(a) => Expr::IsNull(Box::new(a.remap_columns(map)?)),
            Expr::Neg(a) => Expr::Neg(Box::new(a.remap_columns(map)?)),
        })
    }

    /// Split a predicate into its top-level AND-ed conjuncts (boolean
    /// factors, in the paper's terms).
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Recognize a *single-variable boolean factor*: `col <op> literal` or
    /// `literal <op> col`. These are the predicates CACQ indexes in
    /// grouped filters.
    pub fn as_single_column_cmp(&self) -> Option<(usize, CmpOp, Value)> {
        match self {
            Expr::Cmp(op, a, b) => match (a.as_ref(), b.as_ref()) {
                (Expr::Column(c), Expr::Literal(v)) => Some((*c, *op, v.clone())),
                (Expr::Literal(v), Expr::Column(c)) => Some((*c, op.flipped(), v.clone())),
                _ => None,
            },
            _ => None,
        }
    }
}

/// SQL 3VL AND: FALSE dominates NULL.
fn tvl_and(a: &Value, b: &Value) -> Value {
    match (a.as_bool(), b.as_bool()) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    }
}

/// SQL 3VL OR: TRUE dominates NULL.
fn tvl_or(a: &Value, b: &Value) -> Value {
    match (a.as_bool(), b.as_bool()) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    }
}

fn arith(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    // Integer arithmetic when both sides are ints, else float.
    if let (Value::Int(x), Value::Int(y)) = (a, b) {
        let r = match op {
            BinOp::Add => x.checked_add(*y),
            BinOp::Sub => x.checked_sub(*y),
            BinOp::Mul => x.checked_mul(*y),
            BinOp::Div => {
                if *y == 0 {
                    return Err(TcqError::ExecError("integer division by zero".into()));
                }
                x.checked_div(*y)
            }
            BinOp::Mod => {
                if *y == 0 {
                    return Err(TcqError::ExecError("integer modulo by zero".into()));
                }
                x.checked_rem(*y)
            }
        };
        return r
            .map(Value::Int)
            .ok_or_else(|| TcqError::ExecError(format!("integer overflow in {x} {op} {y}")));
    }
    let (x, y) = match (a.as_float(), b.as_float()) {
        (Some(x), Some(y)) => (x, y),
        _ => {
            return Err(TcqError::TypeError(format!(
                "arithmetic on non-numeric values {a} {op} {b}"
            )))
        }
    };
    let r = match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::Mod => x % y,
    };
    Ok(Value::Float(r))
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(i) => write!(f, "#{i}"),
            Expr::Literal(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Arith(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "(NOT {a})"),
            Expr::IsNull(a) => write!(f, "({a} IS NULL)"),
            Expr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    fn row(vals: Vec<Value>) -> Tuple {
        Tuple::at_seq(vals, 1)
    }

    #[test]
    fn column_and_literal() {
        let t = row(vec![Value::Int(5), Value::str("x")]);
        assert_eq!(Expr::col(0).eval(&t).unwrap(), Value::Int(5));
        assert_eq!(Expr::lit(7i64).eval(&t).unwrap(), Value::Int(7));
        assert!(Expr::col(9).eval(&t).is_err());
    }

    #[test]
    fn comparisons_with_3vl() {
        let t = row(vec![Value::Int(5), Value::Null]);
        let gt = Expr::col(0).cmp(CmpOp::Gt, Expr::lit(3i64));
        assert_eq!(gt.eval(&t).unwrap(), Value::Bool(true));
        let vs_null = Expr::col(0).cmp(CmpOp::Gt, Expr::col(1));
        assert_eq!(vs_null.eval(&t).unwrap(), Value::Null);
        assert!(!vs_null.eval_pred(&t).unwrap(), "UNKNOWN filters out");
    }

    #[test]
    fn and_or_3vl_truth_table() {
        let t = row(vec![]);
        let tru = || Expr::lit(true);
        let fls = || Expr::lit(false);
        let nul = || Expr::Literal(Value::Null);
        assert_eq!(fls().and(nul()).eval(&t).unwrap(), Value::Bool(false));
        assert_eq!(nul().and(fls()).eval(&t).unwrap(), Value::Bool(false));
        assert_eq!(tru().and(nul()).eval(&t).unwrap(), Value::Null);
        assert_eq!(tru().or(nul()).eval(&t).unwrap(), Value::Bool(true));
        assert_eq!(nul().or(tru()).eval(&t).unwrap(), Value::Bool(true));
        assert_eq!(fls().or(nul()).eval(&t).unwrap(), Value::Null);
    }

    #[test]
    fn arithmetic() {
        let t = row(vec![Value::Int(10), Value::Float(2.5)]);
        let add = Expr::Arith(BinOp::Add, Box::new(Expr::col(0)), Box::new(Expr::col(1)));
        assert_eq!(add.eval(&t).unwrap(), Value::Float(12.5));
        let idiv = Expr::Arith(
            BinOp::Div,
            Box::new(Expr::col(0)),
            Box::new(Expr::lit(3i64)),
        );
        assert_eq!(idiv.eval(&t).unwrap(), Value::Int(3));
        let div0 = Expr::Arith(
            BinOp::Div,
            Box::new(Expr::col(0)),
            Box::new(Expr::lit(0i64)),
        );
        assert!(div0.eval(&t).is_err());
        let null_prop = Expr::Arith(
            BinOp::Mul,
            Box::new(Expr::col(0)),
            Box::new(Expr::Literal(Value::Null)),
        );
        assert_eq!(null_prop.eval(&t).unwrap(), Value::Null);
    }

    #[test]
    fn overflow_is_an_error_not_a_panic() {
        let t = row(vec![Value::Int(i64::MAX)]);
        let e = Expr::Arith(
            BinOp::Add,
            Box::new(Expr::col(0)),
            Box::new(Expr::lit(1i64)),
        );
        assert!(e.eval(&t).is_err());
    }

    #[test]
    fn not_and_is_null() {
        let t = row(vec![Value::Null, Value::Bool(true)]);
        assert_eq!(
            Expr::Not(Box::new(Expr::col(1))).eval(&t).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::Not(Box::new(Expr::col(0))).eval(&t).unwrap(),
            Value::Null
        );
        assert_eq!(
            Expr::IsNull(Box::new(Expr::col(0))).eval(&t).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn columns_collection_and_remap() {
        let e = Expr::col(2)
            .cmp(CmpOp::Lt, Expr::col(0))
            .and(Expr::col(2).cmp(CmpOp::Gt, Expr::lit(1i64)));
        assert_eq!(e.columns(), vec![0, 2]);
        let shifted = e.remap_columns(&|c| Some(c + 10)).unwrap();
        assert_eq!(shifted.columns(), vec![10, 12]);
        assert!(e
            .remap_columns(&|c| if c == 0 { None } else { Some(c) })
            .is_none());
    }

    #[test]
    fn conjunct_splitting() {
        let a = Expr::col(0).cmp(CmpOp::Gt, Expr::lit(1i64));
        let b = Expr::col(1).cmp(CmpOp::Lt, Expr::lit(2i64));
        let c = Expr::col(2).cmp(CmpOp::Eq, Expr::lit(3i64));
        let e = a.clone().and(b.clone().and(c.clone()));
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &a);
        // OR is not split.
        let o = a.clone().or(b);
        assert_eq!(o.conjuncts().len(), 1);
    }

    #[test]
    fn single_column_cmp_recognition() {
        let e = Expr::col(3).cmp(CmpOp::Ge, Expr::lit(50.0f64));
        assert_eq!(
            e.as_single_column_cmp(),
            Some((3, CmpOp::Ge, Value::Float(50.0)))
        );
        // literal on the left flips the operator.
        let e2 = Expr::lit(50.0f64).cmp(CmpOp::Lt, Expr::col(3));
        assert_eq!(
            e2.as_single_column_cmp(),
            Some((3, CmpOp::Gt, Value::Float(50.0)))
        );
        // col vs col is multi-variable.
        let e3 = Expr::col(0).cmp(CmpOp::Eq, Expr::col(1));
        assert_eq!(e3.as_single_column_cmp(), None);
    }

    #[test]
    fn display_round_trips_visually() {
        let e = Expr::col(0)
            .cmp(CmpOp::Gt, Expr::lit(50.0f64))
            .and(Expr::col(1).cmp(CmpOp::Eq, Expr::lit("MSFT")));
        assert_eq!(e.to_string(), "((#0 > 50) AND (#1 = 'MSFT'))");
    }
}
