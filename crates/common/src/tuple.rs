//! Tuples: the records that flow through the dataflow.
//!
//! A [`Tuple`] is an immutable row plus a timestamp. Field storage is an
//! `Arc<[Value]>`, so cloning a tuple to route it through an Eddy is two
//! atomic increments. Join concatenation ([`Tuple::concat`]) produces a new
//! row whose fields are cheap clones of the inputs' fields.

use std::fmt;
use std::sync::Arc;

use crate::time::Timestamp;
use crate::value::Value;

/// An immutable record with a timestamp and a delta sign.
///
/// Within the Eddy, routing state (lineage) is carried *next to* the tuple
/// by the router, not inside it, so `Tuple` itself stays small and shareable
/// across queries (essential for CACQ-style shared processing).
///
/// The `sign` makes every tuple a delta row: `+1` asserts the row, `-1`
/// retracts a previously asserted copy. Ordinary stream tuples are always
/// `+1`; retractions only appear in query *output* under
/// [`crate::Consistency::Speculative`], when a late event-time arrival
/// forces an already-emitted window result to be amended.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    fields: Arc<[Value]>,
    ts: Timestamp,
    sign: i8,
}

impl Tuple {
    /// Build a tuple from field values, stamped at `ts` (an assertion,
    /// `sign = +1`).
    pub fn new(fields: Vec<Value>, ts: Timestamp) -> Tuple {
        Tuple {
            fields: fields.into(),
            ts,
            sign: 1,
        }
    }

    /// Build a tuple at logical time `seq` (convenience for tests and
    /// generators).
    pub fn at_seq(fields: Vec<Value>, seq: i64) -> Tuple {
        Tuple::new(fields, Timestamp::logical(seq))
    }

    /// The tuple's timestamp (event instant in the source's domain).
    pub fn ts(&self) -> Timestamp {
        self.ts
    }

    /// The delta sign: `+1` asserts this row, `-1` retracts it.
    pub fn sign(&self) -> i8 {
        self.sign
    }

    /// `true` when this tuple retracts a previously emitted row.
    pub fn is_retraction(&self) -> bool {
        self.sign < 0
    }

    /// The same row carrying `sign` (fields are shared, not copied).
    pub fn with_sign(&self, sign: i8) -> Tuple {
        Tuple {
            fields: self.fields.clone(),
            ts: self.ts,
            sign,
        }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// All fields.
    pub fn fields(&self) -> &[Value] {
        &self.fields
    }

    /// Field at `idx`, if in range.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.fields.get(idx)
    }

    /// Field at `idx`; panics when out of range (use in code paths where
    /// the analyzer has already validated column indexes).
    pub fn field(&self, idx: usize) -> &Value {
        &self.fields[idx]
    }

    /// Concatenate two tuples (join output). The result's timestamp is the
    /// *later* of the inputs when they are comparable, else the left
    /// tuple's timestamp (a join across time domains keeps the probing
    /// side's notion of time).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut fields = Vec::with_capacity(self.arity() + other.arity());
        fields.extend_from_slice(&self.fields);
        fields.extend_from_slice(&other.fields);
        let ts = match self.ts.partial_cmp(&other.ts) {
            Some(std::cmp::Ordering::Less) => other.ts,
            _ => self.ts,
        };
        Tuple {
            fields: fields.into(),
            ts,
            // Signs multiply: retracting either join input retracts the
            // joined row (a -1 · -1 pair re-asserts, as in delta algebra).
            sign: self.sign * other.sign,
        }
    }

    /// A new tuple keeping only the fields at `indexes` (projection).
    pub fn project(&self, indexes: &[usize]) -> Tuple {
        let fields = indexes.iter().map(|&i| self.fields[i].clone()).collect();
        Tuple {
            fields,
            ts: self.ts,
            sign: self.sign,
        }
    }

    /// A new tuple with the same fields re-stamped at `ts`.
    pub fn restamped(&self, ts: Timestamp) -> Tuple {
        Tuple {
            fields: self.fields.clone(),
            ts,
            sign: self.sign,
        }
    }

    /// Approximate heap footprint in bytes, used by QoS accounting and the
    /// E8 window-memory experiment.
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Tuple>();
        for f in self.fields.iter() {
            bytes += std::mem::size_of::<Value>();
            if let Value::Str(s) = f {
                bytes += s.len();
            }
        }
        bytes
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign < 0 {
            f.write_str("-")?;
        }
        write!(f, "Tuple[{}](", self.ts)?;
        for (i, v) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(" | ")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: Vec<Value>, seq: i64) -> Tuple {
        Tuple::at_seq(vals, seq)
    }

    #[test]
    fn accessors() {
        let tp = t(vec![Value::Int(1), Value::str("a")], 7);
        assert_eq!(tp.arity(), 2);
        assert_eq!(tp.get(0), Some(&Value::Int(1)));
        assert_eq!(tp.get(2), None);
        assert_eq!(tp.field(1), &Value::str("a"));
        assert_eq!(tp.ts().ticks(), 7);
    }

    #[test]
    fn concat_takes_later_timestamp() {
        let a = t(vec![Value::Int(1)], 3);
        let b = t(vec![Value::Int(2)], 9);
        let ab = a.concat(&b);
        assert_eq!(ab.arity(), 2);
        assert_eq!(ab.fields(), &[Value::Int(1), Value::Int(2)]);
        assert_eq!(ab.ts().ticks(), 9);
        let ba = b.concat(&a);
        assert_eq!(ba.ts().ticks(), 9);
    }

    #[test]
    fn concat_across_domains_keeps_left_ts() {
        let a = Tuple::new(vec![Value::Int(1)], Timestamp::logical(3));
        let b = Tuple::new(vec![Value::Int(2)], Timestamp::physical(99));
        assert_eq!(a.concat(&b).ts(), Timestamp::logical(3));
    }

    #[test]
    fn projection() {
        let tp = t(vec![Value::Int(1), Value::str("a"), Value::Bool(true)], 1);
        let p = tp.project(&[2, 0]);
        assert_eq!(p.fields(), &[Value::Bool(true), Value::Int(1)]);
        assert_eq!(p.ts(), tp.ts());
    }

    #[test]
    fn cheap_clone_shares_fields() {
        let tp = t(vec![Value::str("shared")], 1);
        let c = tp.clone();
        // Same allocation behind both.
        assert!(Arc::ptr_eq(&tp.fields, &c.fields));
    }

    #[test]
    fn approx_bytes_counts_strings() {
        let short = t(vec![Value::Int(1)], 1);
        let long = t(vec![Value::str("aaaaaaaaaaaaaaaaaaaa")], 1);
        assert!(long.approx_bytes() > short.approx_bytes());
    }

    #[test]
    fn display_formats_fields() {
        let tp = t(vec![Value::Int(1), Value::str("x")], 1);
        assert_eq!(tp.to_string(), "1 | x");
    }

    #[test]
    fn signs_default_positive_and_propagate() {
        let tp = t(vec![Value::Int(1), Value::str("x")], 4);
        assert_eq!(tp.sign(), 1);
        assert!(!tp.is_retraction());

        let neg = tp.with_sign(-1);
        assert!(neg.is_retraction());
        assert!(Arc::ptr_eq(&tp.fields, &neg.fields));
        // Sign participates in equality: a retraction is not its assertion.
        assert_ne!(tp, neg);
        assert_eq!(tp.fields(), neg.fields());

        // Projection and restamping preserve the sign.
        assert_eq!(neg.project(&[0]).sign(), -1);
        assert_eq!(neg.restamped(Timestamp::logical(9)).sign(), -1);

        // Join concatenation multiplies signs.
        let pos = t(vec![Value::Int(2)], 5);
        assert_eq!(pos.concat(&neg).sign(), -1);
        assert_eq!(neg.concat(&pos).sign(), -1);
        assert_eq!(neg.concat(&neg).sign(), 1);
        assert_eq!(pos.concat(&pos).sign(), 1);
    }
}
