//! # tcq-common
//!
//! Shared foundation types for TelegraphCQ-rs: values, tuples, schemas,
//! timestamps, scalar expressions, the stream/table catalog, and error
//! types.
//!
//! Every other crate in the workspace builds on these definitions. The
//! design goals are:
//!
//! * **Cheap tuple movement.** Tuples flow through Eddies one at a time and
//!   are routed between modules millions of times per second; [`Tuple`]
//!   therefore stores its fields behind an `Arc<[Value]>` so that routing a
//!   tuple (or concatenating two for a join) never deep-copies field data.
//! * **Multiple notions of time.** The paper (§4.1.1) requires logical
//!   sequence numbers and physical clocks to coexist, with time treated as
//!   a partial order across loosely synchronized sources. [`time`] models
//!   this with per-domain timestamps that are only totally ordered within
//!   one domain.
//! * **One expression language.** Selections, grouped-filter predicates,
//!   join predicates and projection expressions are all built from
//!   [`expr::Expr`], so the SQL front end, the Eddy operators, CACQ and
//!   PSoup agree on evaluation semantics.

pub mod batch;
pub mod catalog;
pub mod consistency;
pub mod durability;
pub mod error;
pub mod expr;
pub mod health;
pub mod membudget;
pub mod rng;
pub mod schema;
pub mod shed;
pub mod time;
pub mod tuple;
pub mod value;
pub mod vexpr;

pub use batch::{Bitmap, Column, ColumnBatch, ColumnData};
pub use catalog::{Catalog, StreamDef, StreamKind};
pub use consistency::Consistency;
pub use durability::Durability;
pub use error::{Result, TcqError};
pub use expr::{BinOp, CmpOp, Expr};
pub use health::{HealthState, OnStorageError};
pub use membudget::{approx_keyed_tuples_bytes, approx_tuples_bytes, BudgetSet, MemBudget};
pub use schema::{Field, Schema};
pub use shed::ShedPolicy;
pub use time::{Clock, TimeDomain, Timestamp};
pub use tuple::Tuple;
pub use value::{DataType, Value};
pub use vexpr::{select_rows, PredBits, Selection};
