//! Error types shared across the workspace.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T, E = TcqError> = std::result::Result<T, E>;

/// Errors raised by TelegraphCQ-rs components.
///
/// Marked `#[non_exhaustive]`: storage and environmental failures grow
/// new shapes over time, and downstream matches must keep a wildcard
/// arm rather than assume the failure taxonomy is closed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TcqError {
    /// A column reference matched no schema field.
    UnknownColumn {
        /// The qualifier used, if any.
        qualifier: Option<String>,
        /// The column name looked up.
        name: String,
    },
    /// A bare column name matched more than one field.
    AmbiguousColumn {
        /// The column name looked up.
        name: String,
        /// Index of the first match.
        first: usize,
        /// Index of the second match.
        second: usize,
    },
    /// A stream or table name was not found in the catalog.
    UnknownStream(String),
    /// A stream or table was registered twice.
    DuplicateStream(String),
    /// Type mismatch during analysis or evaluation.
    TypeError(String),
    /// Query text failed to parse; carries position and message.
    ParseError {
        /// Byte offset into the query text.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// A semantically invalid query (unknown alias, missing window, ...).
    PlanError(String),
    /// Query execution failed.
    ExecError(String),
    /// Storage-layer failure (archive, buffer pool, WAL, spill I/O).
    StorageError(String),
    /// The server is read-only: a persistent storage failure drove the
    /// health state machine to refuse new admissions (see the
    /// `tcq$health` stream for the transition record). Carries the
    /// cause of the transition.
    ReadOnly(String),
    /// A Flux machine or partition operation failed.
    ClusterError(String),
    /// An operation on a shut-down or disconnected component.
    Closed(&'static str),
    /// Client asked for a query id that does not exist (PSoup retrieval).
    UnknownQuery(u64),
}

impl fmt::Display for TcqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TcqError::UnknownColumn { qualifier, name } => match qualifier {
                Some(q) => write!(f, "unknown column {q}.{name}"),
                None => write!(f, "unknown column {name}"),
            },
            TcqError::AmbiguousColumn {
                name,
                first,
                second,
            } => write!(
                f,
                "ambiguous column {name} (matches positions {first} and {second}); qualify it"
            ),
            TcqError::UnknownStream(s) => write!(f, "unknown stream or table {s}"),
            TcqError::DuplicateStream(s) => write!(f, "stream or table {s} already registered"),
            TcqError::TypeError(m) => write!(f, "type error: {m}"),
            TcqError::ParseError { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            TcqError::PlanError(m) => write!(f, "plan error: {m}"),
            TcqError::ExecError(m) => write!(f, "execution error: {m}"),
            TcqError::StorageError(m) => write!(f, "storage error: {m}"),
            TcqError::ReadOnly(cause) => {
                write!(f, "server is read-only after storage failure: {cause}")
            }
            TcqError::ClusterError(m) => write!(f, "cluster error: {m}"),
            TcqError::Closed(what) => write!(f, "{what} is closed"),
            TcqError::UnknownQuery(id) => write!(f, "unknown query id {id}"),
        }
    }
}

impl std::error::Error for TcqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            TcqError::UnknownStream("s".into()).to_string(),
            "unknown stream or table s"
        );
        assert_eq!(
            TcqError::UnknownColumn {
                qualifier: Some("t".into()),
                name: "c".into()
            }
            .to_string(),
            "unknown column t.c"
        );
        assert_eq!(
            TcqError::ParseError {
                offset: 4,
                message: "expected FROM".into()
            }
            .to_string(),
            "parse error at byte 4: expected FROM"
        );
        assert_eq!(TcqError::Closed("queue").to_string(), "queue is closed");
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TcqError::UnknownQuery(3));
    }
}
