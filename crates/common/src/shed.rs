//! Load-shedding policies for overload triage at the ingress boundary.
//!
//! TelegraphCQ's wrappers are "the place for pre-filtering and data
//! triage under overload": when an input Fjord backs up past a high
//! watermark, the engine must decide what to do with arriving tuples
//! instead of silently stalling or dropping. A [`ShedPolicy`] names that
//! decision. The policy is configured globally (`Config::shed_policy` in
//! the server crate) and can be overridden per stream in the catalog
//! ([`crate::Catalog::set_shed_policy`]).

use std::fmt;

/// What the ingress boundary does with arriving tuples while a stream's
/// input queues sit above the high watermark (and until they fall back
/// below the low watermark — the hysteresis keeps the policy from
/// flapping batch to batch).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ShedPolicy {
    /// Apply backpressure: block the producer until space frees up.
    /// Never loses a tuple; the default (and the only pre-existing
    /// behaviour).
    #[default]
    Block,
    /// Drop the arriving tuples; everything already queued is processed.
    DropNewest,
    /// Evict the oldest queued tuples of the stream to make room for the
    /// arriving ones (freshest-data-wins; bounds result staleness).
    DropOldest,
    /// Keep each arriving tuple with probability `rate` (seeded,
    /// deterministic), shedding the rest — approximate answers at full
    /// ingest speed.
    Sample {
        /// Probability in `[0, 1]` of keeping a tuple while shedding.
        rate: f64,
    },
    /// Write arriving batches to the storage-manager archive instead of
    /// the queues, and re-ingest them in arrival order once depth falls
    /// below the low watermark — trades latency for completeness.
    Spill,
}

impl ShedPolicy {
    /// Stable lower-case name (the `policy` column of `tcq$shed`).
    pub fn name(&self) -> &'static str {
        match self {
            ShedPolicy::Block => "block",
            ShedPolicy::DropNewest => "drop_newest",
            ShedPolicy::DropOldest => "drop_oldest",
            ShedPolicy::Sample { .. } => "sample",
            ShedPolicy::Spill => "spill",
        }
    }

    /// Whether this is the backpressure (non-shedding) policy.
    pub fn is_block(&self) -> bool {
        matches!(self, ShedPolicy::Block)
    }
}

impl fmt::Display for ShedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShedPolicy::Sample { rate } => write!(f, "sample({rate})"),
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(ShedPolicy::Block.name(), "block");
        assert_eq!(ShedPolicy::DropNewest.name(), "drop_newest");
        assert_eq!(ShedPolicy::DropOldest.name(), "drop_oldest");
        assert_eq!(ShedPolicy::Sample { rate: 0.5 }.name(), "sample");
        assert_eq!(ShedPolicy::Spill.name(), "spill");
    }

    #[test]
    fn default_is_block() {
        assert!(ShedPolicy::default().is_block());
        assert!(!ShedPolicy::Spill.is_block());
    }

    #[test]
    fn display_includes_sample_rate() {
        assert_eq!(
            ShedPolicy::Sample { rate: 0.25 }.to_string(),
            "sample(0.25)"
        );
        assert_eq!(ShedPolicy::Spill.to_string(), "spill");
    }
}
