//! Time model: multiple simultaneous notions of time, partially ordered.
//!
//! TelegraphCQ (§4.1.1) "allows multiple simultaneous notions of time, such
//! as logical sequence numbers or physical time. In order to accommodate
//! loosely synchronized distributed data sources, we treat time as a
//! partial order, rather than as a complete order."
//!
//! We model this with [`TimeDomain`]s: every [`Timestamp`] carries the
//! domain it was minted in. Timestamps within one domain are totally
//! ordered by their tick count; timestamps from different domains are
//! *incomparable* (`partial_cmp` returns `None`). A [`Clock`] mints
//! monotone timestamps for one domain; the window algebra in
//! `tcq-windows` maps window bounds into a specific domain before
//! comparing.

use std::cmp::Ordering;
use std::fmt;
use std::sync::atomic::{AtomicI64, Ordering as AtomicOrdering};

/// Identifies one notion of time (one clock domain).
///
/// Domain 0 is conventionally the engine-wide logical sequence-number
/// domain; sources with their own clocks allocate fresh domains from the
/// catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimeDomain(pub u32);

impl TimeDomain {
    /// The engine-wide logical (tuple sequence number) domain.
    pub const LOGICAL: TimeDomain = TimeDomain(0);
    /// The engine-wide physical (wall-clock milliseconds) domain.
    pub const PHYSICAL: TimeDomain = TimeDomain(1);
}

/// An instant in one [`TimeDomain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Timestamp {
    domain: TimeDomain,
    ticks: i64,
}

impl Timestamp {
    /// A timestamp at `ticks` in `domain`.
    pub const fn new(domain: TimeDomain, ticks: i64) -> Timestamp {
        Timestamp { domain, ticks }
    }

    /// A logical-domain timestamp (tuple sequence number).
    pub const fn logical(seq: i64) -> Timestamp {
        Timestamp::new(TimeDomain::LOGICAL, seq)
    }

    /// A physical-domain timestamp (milliseconds).
    pub const fn physical(millis: i64) -> Timestamp {
        Timestamp::new(TimeDomain::PHYSICAL, millis)
    }

    /// This timestamp's domain.
    pub fn domain(&self) -> TimeDomain {
        self.domain
    }

    /// Raw tick count within the domain.
    pub fn ticks(&self) -> i64 {
        self.ticks
    }

    /// The timestamp `delta` ticks later (earlier if negative) in the same
    /// domain, saturating at the domain's representable range.
    pub fn offset(&self, delta: i64) -> Timestamp {
        Timestamp::new(self.domain, self.ticks.saturating_add(delta))
    }

    /// True iff `self` and `other` are comparable (same domain).
    pub fn comparable(&self, other: &Timestamp) -> bool {
        self.domain == other.domain
    }
}

impl PartialOrd for Timestamp {
    /// Partial order: ordered within a domain, incomparable across domains.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        if self.domain == other.domain {
            Some(self.ticks.cmp(&other.ticks))
        } else {
            None
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}@d{}", self.ticks, self.domain.0)
    }
}

/// A monotone clock for one domain.
///
/// Thread-safe; `now` reads the current instant without advancing, `tick`
/// advances and returns the new instant. Sources that stamp arriving
/// tuples share one `Clock` per stream.
#[derive(Debug)]
pub struct Clock {
    domain: TimeDomain,
    ticks: AtomicI64,
}

impl Clock {
    /// A clock for `domain` starting at `start` (the first `tick` returns
    /// `start + 1`).
    pub fn new(domain: TimeDomain, start: i64) -> Clock {
        Clock {
            domain,
            ticks: AtomicI64::new(start),
        }
    }

    /// A logical clock starting at 0 (first tick is sequence number 1,
    /// matching the paper's streams that "start with logical timestamp 1").
    pub fn logical() -> Clock {
        Clock::new(TimeDomain::LOGICAL, 0)
    }

    /// This clock's domain.
    pub fn domain(&self) -> TimeDomain {
        self.domain
    }

    /// The current instant, without advancing.
    pub fn now(&self) -> Timestamp {
        Timestamp::new(self.domain, self.ticks.load(AtomicOrdering::Acquire))
    }

    /// Advance by one and return the new instant.
    pub fn tick(&self) -> Timestamp {
        let t = self.ticks.fetch_add(1, AtomicOrdering::AcqRel) + 1;
        Timestamp::new(self.domain, t)
    }

    /// Advance the clock to at least `ticks` (used when replaying external
    /// timestamps from a source that stamps its own data).
    pub fn advance_to(&self, ticks: i64) {
        self.ticks.fetch_max(ticks, AtomicOrdering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_domain_total_order() {
        let a = Timestamp::logical(1);
        let b = Timestamp::logical(2);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.partial_cmp(&a), Some(Ordering::Equal));
    }

    #[test]
    fn across_domains_incomparable() {
        let a = Timestamp::logical(5);
        let b = Timestamp::physical(5);
        assert_eq!(a.partial_cmp(&b), None);
        assert!(!a.comparable(&b));
        assert!(a.comparable(&a));
    }

    #[test]
    fn offset_saturates() {
        let a = Timestamp::logical(i64::MAX - 1);
        assert_eq!(a.offset(10).ticks(), i64::MAX);
        let b = Timestamp::logical(i64::MIN + 1);
        assert_eq!(b.offset(-10).ticks(), i64::MIN);
    }

    #[test]
    fn clock_ticks_monotonically() {
        let c = Clock::logical();
        assert_eq!(c.now().ticks(), 0);
        assert_eq!(c.tick().ticks(), 1);
        assert_eq!(c.tick().ticks(), 2);
        assert_eq!(c.now().ticks(), 2);
    }

    #[test]
    fn clock_advance_to_never_goes_backwards() {
        let c = Clock::logical();
        c.advance_to(10);
        assert_eq!(c.now().ticks(), 10);
        c.advance_to(5);
        assert_eq!(c.now().ticks(), 10);
        assert_eq!(c.tick().ticks(), 11);
    }

    #[test]
    fn clock_is_thread_safe() {
        let c = std::sync::Arc::new(Clock::logical());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.tick();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now().ticks(), 4000);
    }
}
