//! Consistency levels for out-of-order (event-time) streams.
//!
//! Wrappers may deliver tuples whose event timestamps lag the stream
//! head by a bounded disorder. CEDR-style consistency ("Consistent
//! Streaming Through Time") gives each query a choice of how to trade
//! latency against provisional answers:
//!
//! * [`Consistency::Watermark`] — hold a window instant until the
//!   stream's low-watermark (punctuation) passes its right end. Output
//!   is emitted once and never amended; on a disordered stream this is
//!   the only completeness proof, so releases wait for watermarks.
//! * [`Consistency::Speculative`] — emit each instant as soon as the
//!   stream head passes its right end (the in-order assumption, applied
//!   speculatively), then compensate: when a late tuple lands inside an
//!   already-emitted window, re-emit the difference as signed delta
//!   rows (`sign = +1` assertions, `sign = -1` retractions) that
//!   downstream consumers fold into the same final answer.
//!
//! Streams that never arrive out of order behave identically under both
//! levels: the stream head *is* a completeness proof there, so no
//! speculation and no retraction ever happens.

/// Per-query (and engine-default) consistency level; see module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Consistency {
    /// Hold results until the watermark proves them complete.
    #[default]
    Watermark,
    /// Emit speculatively; amend with signed retraction deltas.
    Speculative,
}

impl Consistency {
    /// Parse from a (case-insensitive) keyword, as in CQ-SQL's
    /// `WITH CONSISTENCY <level>` clause and the `TCQ_CONSISTENCY`
    /// environment override.
    pub fn parse(s: &str) -> Option<Consistency> {
        match s.to_ascii_lowercase().as_str() {
            "watermark" => Some(Consistency::Watermark),
            "speculative" => Some(Consistency::Speculative),
            _ => None,
        }
    }

    /// The canonical lowercase token (inverse of [`Consistency::parse`]).
    pub fn name(&self) -> &'static str {
        match self {
            Consistency::Watermark => "watermark",
            Consistency::Speculative => "speculative",
        }
    }
}

impl std::fmt::Display for Consistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for c in [Consistency::Watermark, Consistency::Speculative] {
            assert_eq!(Consistency::parse(c.name()), Some(c));
            assert_eq!(Consistency::parse(&c.name().to_uppercase()), Some(c));
        }
        assert_eq!(Consistency::parse("eventual"), None);
    }

    #[test]
    fn default_is_watermark() {
        assert_eq!(Consistency::default(), Consistency::Watermark);
    }
}
