//! The engine-wide health state machine for environmental failure.
//!
//! Storage beneath a continuous query engine can fail while the engine
//! itself is perfectly capable of serving: an `EIO` on a WAL append, a
//! failed `fsync`, a disk filling up mid-checkpoint. The paper's stance
//! on uncertainty — meet it with *declared, bounded* degradation rather
//! than silent loss or a crash — is applied to the machine itself here:
//!
//! ```text
//!                 wal error, heal fails          archive/spill error
//!   Healthy ────────────────────────▶ DurabilityDegraded ──────────▶ ReadOnly
//!      │                                                               ▲
//!      └───────────────── wal/archive error under OnStorageError::Halt ┘
//! ```
//!
//! * **Healthy** — everything the configuration promises holds.
//! * **DurabilityDegraded** — the engine keeps admitting and serving,
//!   but the write-ahead log is disabled: rows admitted from here on
//!   are *declared at risk* (they would not survive a crash) and
//!   counted exactly, so `ingested == delivered + shed + spilled +
//!   lost_declared` stays an identity rather than a hope.
//! * **ReadOnly** — admission of non-system streams is refused (each
//!   refusal counted); standing queries keep draining what was already
//!   admitted, and the `tcq$*` introspection streams keep flowing so
//!   the failure itself remains observable.
//!
//! Transitions are one-way within a server incarnation: health is a
//! statement about what this process can still promise, and a disk that
//! "seems fine again" after a failed fsync is exactly the situation the
//! fsyncgate rules forbid trusting. (A *counted* fault that heals
//! before degradation is different — the failed operation's effects are
//! re-anchored through a verified checkpoint, and the state never
//! leaves `Healthy`.) Recovery into a fresh process starts at
//! `Healthy` again.

/// What the server does when the storage layer fails persistently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnStorageError {
    /// Declare and degrade: try to re-anchor the log via a verified
    /// checkpoint; if that also fails, drop to `DurabilityDegraded`
    /// (keep serving, count every at-risk row) and only go `ReadOnly`
    /// if the serving path itself is implicated. The default: a stream
    /// engine's first duty is to keep the data moving.
    #[default]
    Degrade,
    /// Stop admitting immediately on any persistent storage failure
    /// (transition straight to `ReadOnly`). For deployments where an
    /// unlogged row is worse than a refused one.
    Halt,
}

impl OnStorageError {
    /// Canonical lowercase name (the env-var / episode token).
    pub fn name(&self) -> &'static str {
        match self {
            OnStorageError::Degrade => "degrade",
            OnStorageError::Halt => "halt",
        }
    }

    /// Parse the canonical name (inverse of [`OnStorageError::name`]).
    pub fn parse(s: &str) -> Option<OnStorageError> {
        match s {
            "degrade" => Some(OnStorageError::Degrade),
            "halt" => Some(OnStorageError::Halt),
            _ => None,
        }
    }
}

/// The server's current promise level (see the module docs for the
/// transition diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum HealthState {
    /// Every configured guarantee holds.
    #[default]
    Healthy,
    /// Serving continues; durability does not. Admitted rows are
    /// declared at risk and counted.
    DurabilityDegraded,
    /// Non-system admission refused; draining and introspection
    /// continue.
    ReadOnly,
}

impl HealthState {
    /// Canonical name (the `tcq$health` row token).
    pub fn name(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::DurabilityDegraded => "durability_degraded",
            HealthState::ReadOnly => "read_only",
        }
    }

    /// Parse the canonical name (inverse of [`HealthState::name`]).
    pub fn parse(s: &str) -> Option<HealthState> {
        match s {
            "healthy" => Some(HealthState::Healthy),
            "durability_degraded" => Some(HealthState::DurabilityDegraded),
            "read_only" => Some(HealthState::ReadOnly),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in [OnStorageError::Degrade, OnStorageError::Halt] {
            assert_eq!(OnStorageError::parse(p.name()), Some(p));
        }
        for s in [
            HealthState::Healthy,
            HealthState::DurabilityDegraded,
            HealthState::ReadOnly,
        ] {
            assert_eq!(HealthState::parse(s.name()), Some(s));
        }
        assert_eq!(OnStorageError::parse("retry"), None);
        assert_eq!(HealthState::parse("mostly_fine"), None);
    }

    #[test]
    fn defaults() {
        assert_eq!(OnStorageError::default(), OnStorageError::Degrade);
        assert_eq!(HealthState::default(), HealthState::Healthy);
    }

    #[test]
    fn states_order_by_severity() {
        assert!(HealthState::Healthy < HealthState::DurabilityDegraded);
        assert!(HealthState::DurabilityDegraded < HealthState::ReadOnly);
    }
}
