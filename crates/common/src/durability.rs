//! The engine-wide durability mode.
//!
//! Shared between the server configuration (`tcq::Config::durability`),
//! the storage-layer write-ahead log (which maps `Buffered`/`Fsync`
//! onto its sync policy), and the simulation episode format (which
//! serializes the mode as a `durability` line so crash chaos is part of
//! a replayable episode).

/// How hard the engine tries to survive a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// No write-ahead log at all: every byte of engine state dies with
    /// the process. The pre-durability behaviour, and the default.
    #[default]
    Off,
    /// Log every admitted batch and punctuation, but let the OS page
    /// cache decide when bytes hit the platter. Survives a process
    /// crash (the common case); an OS crash may lose the buffered tail,
    /// which recovery truncates to the last valid frame.
    Buffered,
    /// `fdatasync` on every commit: survives power loss at the cost of
    /// one sync per admitted batch.
    Fsync,
}

impl Durability {
    /// Whether any logging happens at all.
    pub fn is_off(&self) -> bool {
        matches!(self, Durability::Off)
    }

    /// Canonical lowercase name (the episode-format token).
    pub fn name(&self) -> &'static str {
        match self {
            Durability::Off => "off",
            Durability::Buffered => "buffered",
            Durability::Fsync => "fsync",
        }
    }

    /// Parse the canonical name (inverse of [`Durability::name`]).
    pub fn parse(s: &str) -> Option<Durability> {
        match s {
            "off" => Some(Durability::Off),
            "buffered" => Some(Durability::Buffered),
            "fsync" => Some(Durability::Fsync),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for d in [Durability::Off, Durability::Buffered, Durability::Fsync] {
            assert_eq!(Durability::parse(d.name()), Some(d));
        }
        assert_eq!(Durability::parse("paranoid"), None);
    }

    #[test]
    fn default_is_off() {
        assert!(Durability::default().is_off());
    }
}
