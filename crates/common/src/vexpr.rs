//! Vectorized expression evaluation over [`ColumnBatch`]es.
//!
//! [`Expr::eval_pred_batch`] evaluates a predicate against a whole batch
//! at once, writing selection bitmaps instead of materializing one
//! `Value` per row. The result is exactly the row evaluator's, bit for
//! bit: a row passes iff `eval_pred(row)` would return `Ok(true)`.
//!
//! # Tri-state + error encoding
//!
//! SQL predicates are three-valued (TRUE / FALSE / UNKNOWN) and the row
//! evaluator can additionally *fail* (division by zero, integer
//! overflow, type errors), in which case callers drop the row
//! (`eval_pred(..).unwrap_or(false)`). A [`PredBits`] therefore carries
//! three bitmaps:
//!
//! * `t` — rows where the predicate is TRUE,
//! * `v` — rows where it is TRUE or FALSE (unset ⇒ UNKNOWN),
//! * `err` — rows where *any* sub-expression errored.
//!
//! Because the row evaluator computes both operands of `AND`/`OR`
//! eagerly and propagates the first error (`FALSE AND error` is an
//! error, not FALSE), error bits are OR-ed through every combinator
//! rather than folded into UNKNOWN — folding would diverge on
//! `error OR TRUE`. At `err` rows the `t`/`v` bits are unspecified; the
//! final selection is [`PredBits::pass`] = `t & !err`.
//!
//! # Fallback rules
//!
//! `eval_pred_batch` returns `None` — *fall back to the row evaluator* —
//! when the expression touches a column the batch could not type
//! strictly ([`ColumnData::Mixed`]: mixed types, timestamps, all-NULL),
//! references a column the batch does not have, or uses a
//! boolean-valued sub-expression in a value position (e.g.
//! `(a > b) = (c > d)`). [`select_rows`] packages the
//! vectorize-or-fall-back decision per conjunct for operators.

use std::borrow::Cow;
use std::sync::Arc;

use crate::batch::{Bitmap, ColumnBatch, ColumnData};
use crate::expr::{BinOp, CmpOp, Expr};
use crate::time::Timestamp;
use crate::value::Value;

/// The tri-state result of a vectorized predicate (see module docs).
#[derive(Debug, Clone)]
pub struct PredBits {
    /// Rows where the predicate is TRUE (unspecified at `err` rows).
    pub t: Bitmap,
    /// Rows where the predicate is TRUE or FALSE (unset ⇒ UNKNOWN;
    /// unspecified at `err` rows).
    pub v: Bitmap,
    /// Rows where some sub-expression errored.
    pub err: Bitmap,
}

impl PredBits {
    /// The rows a filter keeps: TRUE and error-free — exactly
    /// `eval_pred(row).unwrap_or(false)`.
    pub fn pass(&self) -> Bitmap {
        let mut p = self.t.clone();
        p.and_not_assign(&self.err);
        p
    }

    fn unknown(n: usize, err: Bitmap) -> PredBits {
        PredBits {
            t: Bitmap::zeros(n),
            v: Bitmap::zeros(n),
            err,
        }
    }

    fn broadcast(n: usize, val: Option<bool>, err: Bitmap) -> PredBits {
        match val {
            Some(true) => PredBits {
                t: Bitmap::ones(n),
                v: Bitmap::ones(n),
                err,
            },
            Some(false) => PredBits {
                t: Bitmap::zeros(n),
                v: Bitmap::ones(n),
                err,
            },
            None => PredBits::unknown(n, err),
        }
    }
}

/// Fold `filters` (implicitly AND-ed, evaluated independently) into one
/// selection over `batch`, vectorizing each conjunct when possible and
/// falling back to the row evaluator for the rest. Rows already
/// filtered out are not row-evaluated again.
pub struct Selection {
    /// Rows that pass every filter.
    pub sel: Bitmap,
    /// Rows evaluated through the row-path fallback (for the
    /// `columnar.fallback_rows` counter).
    pub fallback_rows: u64,
}

/// See [`Selection`].
pub fn select_rows(filters: &[Expr], batch: &ColumnBatch) -> Selection {
    let n = batch.len();
    let mut sel = Bitmap::ones(n);
    let mut fallback_rows = 0u64;
    for f in filters {
        if sel.none_set() {
            break;
        }
        match f.eval_pred_batch(batch) {
            Some(bits) => sel.and_assign(&bits.pass()),
            None => {
                for (i, row) in batch.rows().iter().enumerate() {
                    if sel.get(i) {
                        fallback_rows += 1;
                        if !f.eval_pred(row).unwrap_or(false) {
                            sel.set(i, false);
                        }
                    }
                }
            }
        }
    }
    Selection { sel, fallback_rows }
}

impl Expr {
    /// Vectorized predicate evaluation; `None` means "not vectorizable
    /// for this batch — use the row evaluator" (see module docs for the
    /// fallback rules).
    pub fn eval_pred_batch(&self, batch: &ColumnBatch) -> Option<PredBits> {
        pred(self, batch)
    }
}

/// A value-typed intermediate: one typed source per row plus validity
/// and error bitmaps. Slots that are invalid or errored hold defaults.
struct Vals<'a> {
    src: Src<'a>,
    valid: Bitmap,
    err: Bitmap,
}

enum Src<'a> {
    I(Cow<'a, [i64]>),
    F(Cow<'a, [f64]>),
    B(&'a [bool]),
    S(&'a [Arc<str>]),
    CI(i64),
    CF(f64),
    CB(bool),
    CS(Arc<str>),
    CT(Timestamp),
    /// No data: every row is NULL except where `err` is set.
    None_,
}

/// Integer view of a source (only when no float conversion is needed —
/// SQL compares and computes Int×Int in the integer domain).
enum IntView<'a> {
    Slice(&'a [i64]),
    Const(i64),
}

impl IntView<'_> {
    #[inline]
    fn get(&self, i: usize) -> i64 {
        match self {
            IntView::Slice(s) => s[i],
            IntView::Const(c) => *c,
        }
    }
}

/// Float view of a numeric source (mixed Int/Float goes through f64,
/// matching `Value::as_float` coercion).
enum FloatView<'a> {
    I(&'a [i64]),
    F(&'a [f64]),
    Const(f64),
}

impl FloatView<'_> {
    #[inline]
    fn get(&self, i: usize) -> f64 {
        match self {
            FloatView::I(s) => s[i] as f64,
            FloatView::F(s) => s[i],
            FloatView::Const(c) => *c,
        }
    }
}

enum StrView<'a> {
    Slice(&'a [Arc<str>]),
    Const(&'a str),
}

impl StrView<'_> {
    #[inline]
    fn get(&self, i: usize) -> &str {
        match self {
            StrView::Slice(s) => &s[i],
            StrView::Const(c) => c,
        }
    }
}

enum BoolView<'a> {
    Slice(&'a [bool]),
    Const(bool),
}

impl BoolView<'_> {
    #[inline]
    fn get(&self, i: usize) -> bool {
        match self {
            BoolView::Slice(s) => s[i],
            BoolView::Const(c) => *c,
        }
    }
}

fn int_view<'a>(s: &'a Src<'_>) -> Option<IntView<'a>> {
    match s {
        Src::I(d) => Some(IntView::Slice(d)),
        Src::CI(c) => Some(IntView::Const(*c)),
        _ => None,
    }
}

fn float_view<'a>(s: &'a Src<'_>) -> Option<FloatView<'a>> {
    match s {
        Src::I(d) => Some(FloatView::I(d)),
        Src::F(d) => Some(FloatView::F(d)),
        Src::CI(c) => Some(FloatView::Const(*c as f64)),
        Src::CF(c) => Some(FloatView::Const(*c)),
        _ => None,
    }
}

fn str_view<'a>(s: &'a Src<'_>) -> Option<StrView<'a>> {
    match s {
        Src::S(d) => Some(StrView::Slice(d)),
        Src::CS(c) => Some(StrView::Const(c)),
        _ => None,
    }
}

fn bool_view<'a>(s: &'a Src<'_>) -> Option<BoolView<'a>> {
    match s {
        Src::B(d) => Some(BoolView::Slice(d)),
        Src::CB(c) => Some(BoolView::Const(*c)),
        _ => None,
    }
}

/// Boolean-context evaluation.
fn pred(e: &Expr, batch: &ColumnBatch) -> Option<PredBits> {
    let n = batch.len();
    match e {
        Expr::And(a, b) => {
            let (pa, pb) = (pred(a, batch)?, pred(b, batch)?);
            // FALSE dominates NULL: F = Fa | Fb, T = Ta & Tb.
            let fa = pa.v.and(&pa.t.not());
            let fb = pb.v.and(&pb.t.not());
            let t = pa.t.and(&pb.t);
            let f = fa.or(&fb);
            Some(PredBits {
                v: t.or(&f),
                t,
                err: pa.err.or(&pb.err),
            })
        }
        Expr::Or(a, b) => {
            let (pa, pb) = (pred(a, batch)?, pred(b, batch)?);
            // TRUE dominates NULL: T = Ta | Tb, F = Fa & Fb.
            let fa = pa.v.and(&pa.t.not());
            let fb = pb.v.and(&pb.t.not());
            let t = pa.t.or(&pb.t);
            let f = fa.and(&fb);
            Some(PredBits {
                v: t.or(&f),
                t,
                err: pa.err.or(&pb.err),
            })
        }
        Expr::Not(a) => not_batch(a, batch),
        Expr::Cmp(op, a, b) => cmp_batch(*op, a, b, batch),
        Expr::IsNull(a) => isnull_batch(a, batch),
        // A value expression in boolean context: `as_bool` semantics —
        // non-boolean values behave like UNKNOWN (never an error).
        other => vals(other, batch).map(|va| vals_to_pred(&va, n)),
    }
}

/// Value-context evaluation; `None` ⇒ fall back to rows.
fn vals<'a>(e: &'a Expr, batch: &'a ColumnBatch) -> Option<Vals<'a>> {
    let n = batch.len();
    match e {
        Expr::Column(idx) => {
            let col = batch.col(*idx)?;
            let src = match &col.data {
                ColumnData::Int(d) => Src::I(Cow::Borrowed(&d[..])),
                ColumnData::Float(d) => Src::F(Cow::Borrowed(&d[..])),
                ColumnData::Bool(d) => Src::B(d),
                ColumnData::Str(d) => Src::S(d),
                ColumnData::Mixed(_) => return None,
            };
            Some(Vals {
                src,
                valid: col.valid.clone(),
                err: Bitmap::zeros(n),
            })
        }
        Expr::Literal(v) => {
            let (src, valid) = match v {
                Value::Int(i) => (Src::CI(*i), Bitmap::ones(n)),
                Value::Float(f) => (Src::CF(*f), Bitmap::ones(n)),
                Value::Bool(b) => (Src::CB(*b), Bitmap::ones(n)),
                Value::Str(s) => (Src::CS(s.clone()), Bitmap::ones(n)),
                Value::Ts(t) => (Src::CT(*t), Bitmap::ones(n)),
                Value::Null => (Src::None_, Bitmap::zeros(n)),
            };
            Some(Vals {
                src,
                valid,
                err: Bitmap::zeros(n),
            })
        }
        Expr::Arith(op, a, b) => arith_batch(*op, a, b, batch),
        Expr::Neg(a) => neg_batch(a, batch),
        // Boolean-valued expressions in value position fall back.
        _ => None,
    }
}

/// `as_bool` coercion of a value result into predicate bits: booleans
/// pass through, everything else (numbers, strings, NULL) is UNKNOWN.
fn vals_to_pred(va: &Vals<'_>, n: usize) -> PredBits {
    match &va.src {
        Src::CB(c) => PredBits::broadcast(n, Some(*c), va.err.clone()),
        Src::B(d) => {
            let t = Bitmap::from_fn(n, |i| va.valid.get(i) && d[i]);
            PredBits {
                t,
                v: va.valid.clone(),
                err: va.err.clone(),
            }
        }
        _ => PredBits::unknown(n, va.err.clone()),
    }
}

/// NOT is strict about types in the row evaluator (`NOT 5` is a type
/// error, not UNKNOWN), so it needs the value-level view of its child.
fn not_batch(a: &Expr, batch: &ColumnBatch) -> Option<PredBits> {
    let n = batch.len();
    if matches!(
        a,
        Expr::Column(_) | Expr::Literal(_) | Expr::Arith(..) | Expr::Neg(_)
    ) {
        let va = vals(a, batch)?;
        return Some(match &va.src {
            Src::CB(c) => PredBits::broadcast(n, Some(!*c), va.err),
            Src::B(d) => {
                let t = Bitmap::from_fn(n, |i| va.valid.get(i) && !d[i]);
                PredBits {
                    t,
                    v: va.valid,
                    err: va.err,
                }
            }
            // All rows NULL except err rows.
            Src::None_ => PredBits::unknown(n, va.err),
            // Non-boolean: every non-NULL row is a type error.
            _ => {
                let mut err = va.err;
                err.or_assign(&va.valid);
                PredBits::unknown(n, err)
            }
        });
    }
    let pa = pred(a, batch)?;
    let t = pa.v.and(&pa.t.not());
    Some(PredBits {
        t,
        v: pa.v,
        err: pa.err,
    })
}

fn isnull_batch(a: &Expr, batch: &ColumnBatch) -> Option<PredBits> {
    let n = batch.len();
    if let Some(va) = vals(a, batch) {
        return Some(PredBits {
            t: va.valid.not(),
            v: Bitmap::ones(n),
            err: va.err,
        });
    }
    // Boolean-valued child: NULL ⇔ UNKNOWN.
    let pa = pred(a, batch)?;
    Some(PredBits {
        t: pa.v.not(),
        v: Bitmap::ones(n),
        err: pa.err,
    })
}

fn cmp_batch(op: CmpOp, a: &Expr, b: &Expr, batch: &ColumnBatch) -> Option<PredBits> {
    let n = batch.len();
    let (va, vb) = (vals(a, batch)?, vals(b, batch)?);
    let err = va.err.or(&vb.err);
    if matches!(va.src, Src::None_) || matches!(vb.src, Src::None_) {
        return Some(PredBits::unknown(n, err));
    }
    let valid = va.valid.and(&vb.valid);
    // Int × Int stays in the integer domain (total order).
    if let (Some(x), Some(y)) = (int_view(&va.src), int_view(&vb.src)) {
        let t = Bitmap::from_fn(n, |i| valid.get(i) && op.matches(x.get(i).cmp(&y.get(i))));
        return Some(PredBits { t, v: valid, err });
    }
    // Mixed numeric through f64; NaN compares UNKNOWN (partial order).
    if let (Some(x), Some(y)) = (float_view(&va.src), float_view(&vb.src)) {
        let t = Bitmap::from_fn(n, |i| {
            valid.get(i)
                && x.get(i)
                    .partial_cmp(&y.get(i))
                    .is_some_and(|o| op.matches(o))
        });
        let v = Bitmap::from_fn(n, |i| {
            valid.get(i) && x.get(i).partial_cmp(&y.get(i)).is_some()
        });
        return Some(PredBits { t, v, err });
    }
    if let (Some(x), Some(y)) = (str_view(&va.src), str_view(&vb.src)) {
        let t = Bitmap::from_fn(n, |i| valid.get(i) && op.matches(x.get(i).cmp(y.get(i))));
        return Some(PredBits { t, v: valid, err });
    }
    if let (Some(x), Some(y)) = (bool_view(&va.src), bool_view(&vb.src)) {
        let t = Bitmap::from_fn(n, |i| valid.get(i) && op.matches(x.get(i).cmp(&y.get(i))));
        return Some(PredBits { t, v: valid, err });
    }
    if let (Src::CT(x), Src::CT(y)) = (&va.src, &vb.src) {
        let r = x.partial_cmp(y).map(|o| op.matches(o));
        return Some(match r {
            Some(bit) => {
                let t = if bit { valid.clone() } else { Bitmap::zeros(n) };
                PredBits { t, v: valid, err }
            }
            None => PredBits::unknown(n, err),
        });
    }
    // Cross-type (string vs numeric, bool vs numeric, timestamp vs
    // anything else): sql_cmp is UNKNOWN for every such pair.
    Some(PredBits::unknown(n, err))
}

fn arith_batch<'a>(
    op: BinOp,
    a: &'a Expr,
    b: &'a Expr,
    batch: &'a ColumnBatch,
) -> Option<Vals<'a>> {
    let n = batch.len();
    let (va, vb) = (vals(a, batch)?, vals(b, batch)?);
    let mut err = va.err.or(&vb.err);
    if matches!(va.src, Src::None_) || matches!(vb.src, Src::None_) {
        // NULL operand rows are NULL; only inherited errors remain.
        return Some(Vals {
            src: Src::None_,
            valid: Bitmap::zeros(n),
            err,
        });
    }
    let valid = va.valid.and(&vb.valid);
    // Int × Int: checked integer ops; div/mod by zero and overflow are
    // per-row errors (NULL short-circuits *before* the zero check, as in
    // the row evaluator — the `valid` gate encodes that).
    if let (Some(x), Some(y)) = (int_view(&va.src), int_view(&vb.src)) {
        let mut data = vec![0i64; n];
        for (i, slot) in data.iter_mut().enumerate() {
            if !valid.get(i) {
                continue;
            }
            let (p, q) = (x.get(i), y.get(i));
            let r = match op {
                BinOp::Add => p.checked_add(q),
                BinOp::Sub => p.checked_sub(q),
                BinOp::Mul => p.checked_mul(q),
                BinOp::Div => {
                    if q == 0 {
                        None
                    } else {
                        p.checked_div(q)
                    }
                }
                BinOp::Mod => {
                    if q == 0 {
                        None
                    } else {
                        p.checked_rem(q)
                    }
                }
            };
            match r {
                Some(r) => *slot = r,
                None => err.set(i, true),
            }
        }
        return Some(Vals {
            src: Src::I(Cow::Owned(data)),
            valid,
            err,
        });
    }
    if let (Some(x), Some(y)) = (float_view(&va.src), float_view(&vb.src)) {
        let mut data = vec![0.0f64; n];
        for (i, slot) in data.iter_mut().enumerate() {
            let (p, q) = (x.get(i), y.get(i));
            *slot = match op {
                BinOp::Add => p + q,
                BinOp::Sub => p - q,
                BinOp::Mul => p * q,
                BinOp::Div => p / q,
                BinOp::Mod => p % q,
            };
        }
        return Some(Vals {
            src: Src::F(Cow::Owned(data)),
            valid,
            err,
        });
    }
    // Non-numeric operand: every row where both sides are non-NULL is a
    // type error; NULL rows stay NULL.
    err.or_assign(&valid);
    Some(Vals {
        src: Src::None_,
        valid: Bitmap::zeros(n),
        err,
    })
}

fn neg_batch<'a>(a: &'a Expr, batch: &'a ColumnBatch) -> Option<Vals<'a>> {
    let n = batch.len();
    let va = vals(a, batch)?;
    Some(match &va.src {
        // Plain negation, like the row evaluator (invalid/err slots hold
        // 0, so the map is total).
        Src::I(d) => Vals {
            src: Src::I(Cow::Owned(d.iter().map(|&x| -x).collect())),
            valid: va.valid,
            err: va.err,
        },
        Src::F(d) => Vals {
            src: Src::F(Cow::Owned(d.iter().map(|&x| -x).collect())),
            valid: va.valid,
            err: va.err,
        },
        Src::CI(c) => Vals {
            src: Src::CI(-*c),
            valid: va.valid,
            err: va.err,
        },
        Src::CF(c) => Vals {
            src: Src::CF(-*c),
            valid: va.valid,
            err: va.err,
        },
        Src::None_ => va,
        // Strings, bools, timestamps: type error at every non-NULL row.
        _ => {
            let mut err = va.err;
            err.or_assign(&va.valid);
            Vals {
                src: Src::None_,
                valid: Bitmap::zeros(n),
                err,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    fn batch(rows: Vec<Vec<Value>>) -> ColumnBatch {
        ColumnBatch::from_tuples(
            rows.into_iter()
                .enumerate()
                .map(|(i, vals)| Tuple::at_seq(vals, i as i64))
                .collect(),
        )
    }

    /// The ground truth: batch selection == per-row eval_pred.
    fn assert_matches_rows(e: &Expr, b: &ColumnBatch) {
        let bits = e
            .eval_pred_batch(b)
            .unwrap_or_else(|| panic!("expected {e} to vectorize"));
        let pass = bits.pass();
        for (i, row) in b.rows().iter().enumerate() {
            assert_eq!(
                pass.get(i),
                e.eval_pred(row).unwrap_or(false),
                "row {i} diverges for {e}"
            );
        }
    }

    #[test]
    fn cmp_kernels_match_rows() {
        let b = batch(vec![
            vec![Value::Int(1), Value::Float(0.5), Value::str("a")],
            vec![Value::Null, Value::Float(2.5), Value::str("bb")],
            vec![Value::Int(-3), Value::Null, Value::Null],
            vec![Value::Int(7), Value::Float(7.0), Value::str("a")],
        ]);
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_matches_rows(&Expr::col(0).cmp(op, Expr::lit(1i64)), &b);
            assert_matches_rows(&Expr::col(0).cmp(op, Expr::col(1)), &b);
            assert_matches_rows(&Expr::col(1).cmp(op, Expr::lit(2.0f64)), &b);
            assert_matches_rows(&Expr::col(2).cmp(op, Expr::lit("a")), &b);
            // Cross-type: statically UNKNOWN.
            assert_matches_rows(&Expr::col(2).cmp(op, Expr::lit(1i64)), &b);
        }
    }

    #[test]
    fn nan_compares_unknown() {
        let b = batch(vec![vec![Value::Float(f64::NAN)], vec![Value::Float(1.0)]]);
        let e = Expr::col(0).cmp(CmpOp::Le, Expr::lit(f64::MAX));
        assert_matches_rows(&e, &b);
        let bits = e.eval_pred_batch(&b).unwrap();
        assert!(!bits.v.get(0), "NaN row is UNKNOWN");
        assert!(bits.v.get(1));
    }

    #[test]
    fn and_or_not_isnull_match_rows() {
        let b = batch(vec![
            vec![Value::Int(5), Value::Bool(true)],
            vec![Value::Null, Value::Bool(false)],
            vec![Value::Int(0), Value::Null],
            vec![Value::Int(-5), Value::Bool(true)],
        ]);
        let lo = Expr::col(0).cmp(CmpOp::Ge, Expr::lit(0i64));
        let hi = Expr::col(0).cmp(CmpOp::Lt, Expr::lit(4i64));
        assert_matches_rows(&lo.clone().and(hi.clone()), &b);
        assert_matches_rows(&lo.clone().or(hi.clone()), &b);
        assert_matches_rows(&Expr::Not(Box::new(lo.clone())), &b);
        assert_matches_rows(&Expr::IsNull(Box::new(Expr::col(0))), &b);
        assert_matches_rows(&Expr::IsNull(Box::new(lo.clone())), &b);
        assert_matches_rows(&Expr::col(1).and(lo), &b);
        assert_matches_rows(&Expr::Not(Box::new(Expr::col(1))), &b);
    }

    #[test]
    fn errors_propagate_not_fold_to_null() {
        // `1/0 = 1 OR TRUE`: the row path errors (OR evaluates both
        // sides eagerly) and drops the row; NULL-folding would keep it.
        let div0 = Expr::Arith(
            BinOp::Div,
            Box::new(Expr::lit(1i64)),
            Box::new(Expr::col(0)),
        )
        .cmp(CmpOp::Eq, Expr::lit(1i64));
        let e = div0.or(Expr::lit(true));
        let b = batch(vec![
            vec![Value::Int(0)],
            vec![Value::Int(1)],
            vec![Value::Null],
        ]);
        assert_matches_rows(&e, &b);
        let bits = e.eval_pred_batch(&b).unwrap();
        assert!(!bits.pass().get(0), "error row dropped despite OR TRUE");
        assert!(bits.pass().get(1));
        assert!(bits.pass().get(2), "NULL divisor is NULL, not an error");
    }

    #[test]
    fn arith_kernels_match_rows() {
        let b = batch(vec![
            vec![Value::Int(10), Value::Int(3), Value::Float(2.5)],
            vec![Value::Int(i64::MAX), Value::Int(2), Value::Float(0.0)],
            vec![Value::Int(-7), Value::Int(0), Value::Null],
            vec![Value::Null, Value::Int(5), Value::Float(-1.0)],
        ]);
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Mod] {
            let ii = Expr::Arith(op, Box::new(Expr::col(0)), Box::new(Expr::col(1)))
                .cmp(CmpOp::Gt, Expr::lit(0i64));
            assert_matches_rows(&ii, &b);
            let ff = Expr::Arith(op, Box::new(Expr::col(0)), Box::new(Expr::col(2)))
                .cmp(CmpOp::Gt, Expr::lit(0.0f64));
            assert_matches_rows(&ff, &b);
        }
        let neg = Expr::Neg(Box::new(Expr::col(0))).cmp(CmpOp::Lt, Expr::lit(0i64));
        assert_matches_rows(&neg, &b);
    }

    #[test]
    fn type_errors_in_arith_match_rows() {
        let b = batch(vec![
            vec![Value::str("x"), Value::Int(1)],
            vec![Value::Null, Value::Int(2)],
        ]);
        let e = Expr::Arith(BinOp::Add, Box::new(Expr::col(0)), Box::new(Expr::col(1)))
            .cmp(CmpOp::Eq, Expr::lit(1i64));
        assert_matches_rows(&e, &b);
        let n = Expr::Neg(Box::new(Expr::col(0))).cmp(CmpOp::Eq, Expr::lit(1i64));
        assert_matches_rows(&n, &b);
    }

    #[test]
    fn mixed_columns_and_bad_indexes_fall_back() {
        let b = batch(vec![
            vec![Value::Int(1)],
            vec![Value::Float(2.0)], // column 0 is Mixed
        ]);
        let e = Expr::col(0).cmp(CmpOp::Gt, Expr::lit(0i64));
        assert!(e.eval_pred_batch(&b).is_none());
        let oob = Expr::col(9).cmp(CmpOp::Gt, Expr::lit(0i64));
        assert!(oob.eval_pred_batch(&b).is_none());
    }

    #[test]
    fn select_rows_folds_filters_with_fallback() {
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Int(i), Value::Float(i as f64 / 2.0)])
            .collect();
        let b = batch(rows);
        let vec_filter = Expr::col(0).cmp(CmpOp::Ge, Expr::lit(10i64));
        // Not vectorizable: boolean-valued comparison in value position.
        let fb_filter = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::col(0).cmp(CmpOp::Lt, Expr::lit(50i64))),
            Box::new(Expr::lit(true)),
        );
        let s = select_rows(&[vec_filter.clone(), fb_filter.clone()], &b);
        assert_eq!(s.sel.count_ones(), 40);
        assert_eq!(s.fallback_rows, 90, "only still-selected rows re-checked");
        for (i, row) in b.rows().iter().enumerate() {
            let want = vec_filter.eval_pred(row).unwrap_or(false)
                && fb_filter.eval_pred(row).unwrap_or(false);
            assert_eq!(s.sel.get(i), want);
        }
    }

    #[test]
    fn literal_predicates_broadcast() {
        let b = batch(vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        assert_matches_rows(&Expr::lit(true), &b);
        assert_matches_rows(&Expr::lit(false), &b);
        assert_matches_rows(&Expr::Literal(Value::Null), &b);
        // Non-boolean literal as a predicate: UNKNOWN, not an error.
        assert_matches_rows(&Expr::lit(5i64), &b);
        assert_matches_rows(&Expr::lit(5i64).and(Expr::lit(false)), &b);
    }
}
