//! Columnar batch representation: one typed vector per column plus a
//! selection bitmap.
//!
//! [`ColumnBatch`] is the unit the vectorized execution path routes: a
//! window of tuples decomposed column-by-column into typed vectors
//! (`Int64`/`Float64`/`Bool`/`Str`, each with a validity bitmap), with
//! the original row-form tuples retained alongside. Keeping the rows
//! makes the row⇄column boundary free on the way out — operators select
//! *which* rows survive with a [`Bitmap`], and egress hands the original
//! `Tuple`s (same `Arc` fields, same timestamps) to clients, so columnar
//! results are byte-identical to the row path by construction.
//!
//! Columns are typed strictly: a column is `Int64` only when every
//! non-NULL value in the batch is `Value::Int`, and so on. A column
//! holding mixed types, or timestamps, is kept as [`ColumnData::Mixed`]
//! and the vectorized evaluator falls back to the row evaluator for
//! expressions touching it (see `vexpr`).

use std::sync::Arc;

use crate::tuple::Tuple;
use crate::value::Value;

/// A fixed-length bitmap over the rows of a batch, stored as `u64`
/// words. Bits past `len` are always zero (every operation re-masks the
/// tail), so word-level folds (`count_ones`, AND/OR across words) need
/// no edge handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An all-zero bitmap over `len` rows.
    pub fn zeros(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// An all-one bitmap over `len` rows.
    pub fn ones(len: usize) -> Bitmap {
        let mut b = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.mask_tail();
        b
    }

    /// Build from a per-row predicate, packing 64 rows per word.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Bitmap {
        let mut words = Vec::with_capacity(len.div_ceil(64));
        let mut i = 0;
        while i < len {
            let mut w = 0u64;
            let end = (i + 64).min(len);
            for j in i..end {
                w |= (f(j) as u64) << (j - i);
            }
            words.push(w);
            i = end;
        }
        Bitmap { words, len }
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit for `row`.
    pub fn get(&self, row: usize) -> bool {
        debug_assert!(row < self.len);
        self.words[row / 64] >> (row % 64) & 1 == 1
    }

    /// Set the bit for `row`.
    pub fn set(&mut self, row: usize, on: bool) {
        debug_assert!(row < self.len);
        let (w, b) = (row / 64, row % 64);
        if on {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff every row's bit is set.
    pub fn all_set(&self) -> bool {
        self.count_ones() == self.len
    }

    /// True iff no bit is set.
    pub fn none_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self &= other` (word-parallel).
    pub fn and_assign(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self |= other` (word-parallel).
    pub fn or_assign(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self &= !other` (word-parallel).
    pub fn and_not_assign(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// The complement over the covered rows.
    pub fn not(&self) -> Bitmap {
        let mut out = Bitmap {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// `a & b` as a new bitmap.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// `a | b` as a new bitmap.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// Indexes of the set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Zero any bits past `len` so word-level folds stay exact.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// The typed vector behind one column of a batch. Slots where the
/// validity bitmap is unset hold an arbitrary default and must not be
/// read as data.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Every non-NULL value is `Value::Int`.
    Int(Vec<i64>),
    /// Every non-NULL value is `Value::Float`.
    Float(Vec<f64>),
    /// Every non-NULL value is `Value::Bool`.
    Bool(Vec<bool>),
    /// Every non-NULL value is `Value::Str` (refcount-shared with the
    /// source tuples).
    Str(Vec<Arc<str>>),
    /// Mixed types, timestamps, or all-NULL: kept as boxed values; the
    /// vectorized evaluator treats such columns as non-vectorizable.
    Mixed(Vec<Value>),
}

/// One column of a [`ColumnBatch`]: typed data plus a validity bitmap
/// (`valid` bit unset ⇔ the value is SQL NULL).
#[derive(Debug, Clone)]
pub struct Column {
    /// Typed values (see [`ColumnData`] for the slot contract).
    pub data: ColumnData,
    /// Bit per row: set ⇔ the value is non-NULL.
    pub valid: Bitmap,
}

/// A batch of tuples in columnar form, with the original rows retained.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    rows: Vec<Tuple>,
    cols: Vec<Column>,
}

impl ColumnBatch {
    /// Decompose `rows` into typed columns. When rows disagree on arity
    /// (heterogeneous batch), no columns are produced and every
    /// expression falls back to the row evaluator.
    pub fn from_tuples(rows: Vec<Tuple>) -> ColumnBatch {
        let arity = rows.first().map_or(0, Tuple::arity);
        if rows.iter().any(|t| t.arity() != arity) {
            return ColumnBatch {
                rows,
                cols: Vec::new(),
            };
        }
        let cols = (0..arity).map(|c| build_column(&rows, c)).collect();
        ColumnBatch { rows, cols }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of decomposed columns (0 for a heterogeneous batch).
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// The original tuples, in arrival order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Delta sign per row (`+1` assertion, `-1` retraction), in arrival
    /// order. Signs ride on the retained row-form tuples, so the columnar
    /// path carries them losslessly through selection and re-batching.
    pub fn signs(&self) -> impl Iterator<Item = i8> + '_ {
        self.rows.iter().map(Tuple::sign)
    }

    /// Column `idx`, if decomposed.
    pub fn col(&self, idx: usize) -> Option<&Column> {
        self.cols.get(idx)
    }

    /// Clone the rows whose bit is set in `sel`, in order.
    pub fn selected(&self, sel: &Bitmap) -> Vec<Tuple> {
        debug_assert_eq!(sel.len(), self.rows.len());
        sel.iter_ones().map(|i| self.rows[i].clone()).collect()
    }

    /// Consume the batch, keeping only the rows whose bit is set.
    pub fn into_selected(self, sel: &Bitmap) -> Vec<Tuple> {
        debug_assert_eq!(sel.len(), self.rows.len());
        let mut out = Vec::with_capacity(sel.count_ones());
        for (i, t) in self.rows.into_iter().enumerate() {
            if sel.get(i) {
                out.push(t);
            }
        }
        out
    }

    /// Give the rows back (the inverse of [`ColumnBatch::from_tuples`]).
    pub fn into_rows(self) -> Vec<Tuple> {
        self.rows
    }
}

/// Build the typed column at `idx` from a row slice without consuming
/// or cloning the rows — for consumers that need only a few columns of
/// an already-owned row set (e.g. windowed aggregation) and would waste
/// work transposing the rest. Every row must have `idx` in range.
pub fn column_at(rows: &[Tuple], idx: usize) -> Column {
    build_column(rows, idx)
}

/// Type-detect and fill one column (two passes: discriminant scan, then
/// a monomorphic fill loop).
fn build_column(rows: &[Tuple], c: usize) -> Column {
    let n = rows.len();
    let mut ty: Option<&Value> = None;
    let mut mixed = false;
    for t in rows {
        let v = t.field(c);
        if v.is_null() {
            continue;
        }
        match ty {
            None => ty = Some(v),
            Some(first) => {
                if std::mem::discriminant(first) != std::mem::discriminant(v) {
                    mixed = true;
                    break;
                }
            }
        }
    }
    let valid = Bitmap::from_fn(n, |i| !rows[i].field(c).is_null());
    let data = if mixed {
        ColumnData::Mixed(rows.iter().map(|t| t.field(c).clone()).collect())
    } else {
        match ty {
            Some(Value::Int(_)) => ColumnData::Int(
                rows.iter()
                    .map(|t| match t.field(c) {
                        Value::Int(i) => *i,
                        _ => 0,
                    })
                    .collect(),
            ),
            Some(Value::Float(_)) => ColumnData::Float(
                rows.iter()
                    .map(|t| match t.field(c) {
                        Value::Float(f) => *f,
                        _ => 0.0,
                    })
                    .collect(),
            ),
            Some(Value::Bool(_)) => ColumnData::Bool(
                rows.iter()
                    .map(|t| matches!(t.field(c), Value::Bool(true)))
                    .collect(),
            ),
            Some(Value::Str(_)) => {
                let empty: Arc<str> = Arc::from("");
                ColumnData::Str(
                    rows.iter()
                        .map(|t| match t.field(c) {
                            Value::Str(s) => s.clone(),
                            _ => empty.clone(),
                        })
                        .collect(),
                )
            }
            // Timestamps and all-NULL columns stay boxed.
            _ => ColumnData::Mixed(rows.iter().map(|t| t.field(c).clone()).collect()),
        }
    };
    Column { data, valid }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn t(vals: Vec<Value>, seq: i64) -> Tuple {
        Tuple::at_seq(vals, seq)
    }

    #[test]
    fn signs_survive_batching_and_selection() {
        let rows = vec![
            t(vec![Value::Int(1)], 1),
            t(vec![Value::Int(2)], 2).with_sign(-1),
            t(vec![Value::Int(3)], 3),
        ];
        let batch = ColumnBatch::from_tuples(rows);
        assert_eq!(batch.signs().collect::<Vec<_>>(), vec![1, -1, 1]);
        let sel = Bitmap::from_fn(3, |i| i != 0);
        let kept = batch.selected(&sel);
        assert_eq!(kept[0].sign(), -1);
        assert_eq!(kept[1].sign(), 1);
    }

    #[test]
    fn bitmap_ops_mask_the_tail() {
        let ones = Bitmap::ones(70);
        assert_eq!(ones.count_ones(), 70);
        assert!(ones.all_set());
        let not = ones.not();
        assert_eq!(not.count_ones(), 0);
        assert!(not.none_set());
        let evens = Bitmap::from_fn(70, |i| i % 2 == 0);
        assert_eq!(evens.count_ones(), 35);
        assert_eq!(evens.not().count_ones(), 35);
        let mut x = evens.clone();
        x.and_assign(&ones);
        assert_eq!(x, evens);
        x.or_assign(&evens.not());
        assert!(x.all_set());
        x.and_not_assign(&evens);
        assert_eq!(x, evens.not());
    }

    #[test]
    fn bitmap_iter_ones_ascending() {
        let b = Bitmap::from_fn(130, |i| i % 63 == 0);
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, vec![0, 63, 126]);
    }

    #[test]
    fn columns_are_typed_strictly() {
        let rows = vec![
            t(vec![Value::Int(1), Value::Float(0.5), Value::str("a")], 1),
            t(vec![Value::Null, Value::Float(1.5), Value::str("b")], 2),
            t(vec![Value::Int(3), Value::Null, Value::Null], 3),
        ];
        let b = ColumnBatch::from_tuples(rows);
        assert_eq!(b.num_cols(), 3);
        match &b.col(0).unwrap().data {
            ColumnData::Int(v) => assert_eq!(&v[..], &[1, 0, 3]),
            other => panic!("expected Int column, got {other:?}"),
        }
        assert!(!b.col(0).unwrap().valid.get(1));
        match &b.col(1).unwrap().data {
            ColumnData::Float(v) => assert_eq!(&v[..2], &[0.5, 1.5]),
            other => panic!("expected Float column, got {other:?}"),
        }
        match &b.col(2).unwrap().data {
            ColumnData::Str(v) => assert_eq!(v[1].as_ref(), "b"),
            other => panic!("expected Str column, got {other:?}"),
        }
    }

    #[test]
    fn mixed_and_ts_columns_stay_boxed() {
        let rows = vec![
            t(vec![Value::Int(1), Value::Ts(Timestamp::logical(1))], 1),
            t(vec![Value::Float(2.0), Value::Ts(Timestamp::logical(2))], 2),
        ];
        let b = ColumnBatch::from_tuples(rows);
        assert!(matches!(b.col(0).unwrap().data, ColumnData::Mixed(_)));
        assert!(matches!(b.col(1).unwrap().data, ColumnData::Mixed(_)));
    }

    #[test]
    fn all_null_column_is_mixed_and_invalid() {
        let rows = vec![t(vec![Value::Null], 1), t(vec![Value::Null], 2)];
        let b = ColumnBatch::from_tuples(rows);
        assert!(matches!(b.col(0).unwrap().data, ColumnData::Mixed(_)));
        assert!(b.col(0).unwrap().valid.none_set());
    }

    #[test]
    fn ragged_batches_produce_no_columns() {
        let rows = vec![t(vec![Value::Int(1)], 1), t(vec![], 2)];
        let b = ColumnBatch::from_tuples(rows);
        assert_eq!(b.num_cols(), 0);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn selection_returns_original_tuples() {
        let rows: Vec<Tuple> = (0..10).map(|i| t(vec![Value::Int(i)], i)).collect();
        let b = ColumnBatch::from_tuples(rows.clone());
        let sel = Bitmap::from_fn(10, |i| i % 3 == 0);
        let got = b.selected(&sel);
        assert_eq!(got.len(), 4);
        for (g, i) in got.iter().zip([0usize, 3, 6, 9]) {
            assert_eq!(g, &rows[i]);
        }
        let moved = b.into_selected(&sel);
        assert_eq!(moved, got);
    }
}
