//! The metadata catalog: registered streams and tables.
//!
//! Telegraph "maintains a metadata catalog of data ingress wrappers or
//! gateways" (§2.1). Ours maps names to schemas, records whether each
//! relation is a live stream or a static table, whether its history is
//! archived to the storage manager, and which time domain stamps it.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use crate::error::{Result, TcqError};
use crate::schema::Schema;
use crate::shed::ShedPolicy;
use crate::time::TimeDomain;

/// Whether a relation is an unbounded stream or a static table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// Unbounded, append-only stream; queries need windows over it.
    Stream,
    /// Static (or slowly changing) table; "an input without a
    /// corresponding WindowIs statement is assumed to be a static table"
    /// (§4.1.1).
    Table,
}

/// A registered stream or table.
#[derive(Debug, Clone)]
pub struct StreamDef {
    /// Name (lowercased).
    pub name: String,
    /// Column layout, qualified by `name`.
    pub schema: Schema,
    /// Stream vs table.
    pub kind: StreamKind,
    /// Whether arriving tuples are spooled to the archive so historical
    /// windows can be answered.
    pub archived: bool,
    /// The time domain that stamps this relation's tuples.
    pub time_domain: TimeDomain,
    /// Per-stream overload policy; `None` inherits the engine-wide
    /// default (the server's `Config::shed_policy`).
    pub shed_policy: Option<ShedPolicy>,
}

/// Thread-safe name → definition registry.
///
/// Wrapped in an `Arc` internally, so `Catalog` handles are cheap to clone
/// and share between the FrontEnd, Executor and Wrapper threads.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    inner: Arc<RwLock<CatalogInner>>,
}

#[derive(Debug, Default)]
struct CatalogInner {
    defs: HashMap<String, StreamDef>,
    next_domain: u32,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog {
            inner: Arc::new(RwLock::new(CatalogInner {
                defs: HashMap::new(),
                // Domains 0 and 1 are reserved (logical / physical).
                next_domain: 2,
            })),
        }
    }

    /// Register a relation. Fails if the name is taken.
    pub fn register(&self, def: StreamDef) -> Result<()> {
        let name = def.name.to_ascii_lowercase();
        let mut inner = self.inner.write().unwrap();
        if inner.defs.contains_key(&name) {
            return Err(TcqError::DuplicateStream(name));
        }
        inner.defs.insert(name.clone(), StreamDef { name, ..def });
        Ok(())
    }

    /// Register a stream with the logical time domain and archiving on;
    /// the common case for examples and tests.
    pub fn register_stream(&self, name: &str, schema: Schema) -> Result<()> {
        self.register(StreamDef {
            name: name.into(),
            schema,
            kind: StreamKind::Stream,
            archived: true,
            time_domain: TimeDomain::LOGICAL,
            shed_policy: None,
        })
    }

    /// Register a static table.
    pub fn register_table(&self, name: &str, schema: Schema) -> Result<()> {
        self.register(StreamDef {
            name: name.into(),
            schema,
            kind: StreamKind::Table,
            archived: false,
            time_domain: TimeDomain::LOGICAL,
            shed_policy: None,
        })
    }

    /// Remove a relation; returns its definition.
    pub fn deregister(&self, name: &str) -> Result<StreamDef> {
        self.inner
            .write()
            .unwrap()
            .defs
            .remove(&name.to_ascii_lowercase())
            .ok_or_else(|| TcqError::UnknownStream(name.into()))
    }

    /// Set (or clear) a relation's overload policy. `None` falls back to
    /// the engine-wide default.
    pub fn set_shed_policy(&self, name: &str, policy: Option<ShedPolicy>) -> Result<()> {
        let mut inner = self.inner.write().unwrap();
        let def = inner
            .defs
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| TcqError::UnknownStream(name.into()))?;
        def.shed_policy = policy;
        Ok(())
    }

    /// Look up a relation by name (case-insensitive).
    pub fn lookup(&self, name: &str) -> Result<StreamDef> {
        self.inner
            .read()
            .unwrap()
            .defs
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| TcqError::UnknownStream(name.into()))
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<_> = self.inner.read().unwrap().defs.keys().cloned().collect();
        names.sort();
        names
    }

    /// Allocate a fresh time domain for a source with its own clock.
    pub fn allocate_time_domain(&self) -> TimeDomain {
        let mut inner = self.inner.write().unwrap();
        let d = TimeDomain(inner.next_domain);
        inner.next_domain += 1;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::qualified("s", vec![Field::new("x", DataType::Int)])
    }

    #[test]
    fn register_and_lookup_case_insensitive() {
        let c = Catalog::new();
        c.register_stream("Trades", schema()).unwrap();
        let def = c.lookup("TRADES").unwrap();
        assert_eq!(def.name, "trades");
        assert_eq!(def.kind, StreamKind::Stream);
        assert!(def.archived);
    }

    #[test]
    fn duplicate_rejected() {
        let c = Catalog::new();
        c.register_stream("s", schema()).unwrap();
        assert!(matches!(
            c.register_table("S", schema()),
            Err(TcqError::DuplicateStream(_))
        ));
    }

    #[test]
    fn deregister_then_lookup_fails() {
        let c = Catalog::new();
        c.register_table("t", schema()).unwrap();
        c.deregister("t").unwrap();
        assert!(c.lookup("t").is_err());
        assert!(c.deregister("t").is_err());
    }

    #[test]
    fn names_sorted() {
        let c = Catalog::new();
        c.register_stream("b", schema()).unwrap();
        c.register_stream("a", schema()).unwrap();
        assert_eq!(c.names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn fresh_time_domains_skip_reserved() {
        let c = Catalog::new();
        let d = c.allocate_time_domain();
        assert!(d.0 >= 2);
        assert_ne!(c.allocate_time_domain(), d);
    }

    #[test]
    fn catalog_handles_share_state() {
        let c = Catalog::new();
        let c2 = c.clone();
        c.register_stream("s", schema()).unwrap();
        assert!(c2.lookup("s").is_ok());
    }
}
