//! Scalar values and their data types.
//!
//! TelegraphCQ's example schema (`ClosingStockPrices`) uses longs, fixed
//! chars and floats; we support a compact set of scalar types sufficient
//! for the paper's workloads: 64-bit integers, 64-bit floats, strings,
//! booleans and timestamps, plus SQL `NULL`.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::time::Timestamp;

/// The type of a [`Value`], used in schemas and by the analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// SQL NULL's type; compatible with every other type.
    Null,
    /// Boolean.
    Bool,
    /// 64-bit signed integer (`long` in the paper's schema).
    Int,
    /// 64-bit IEEE float (`float closingPrice`).
    Float,
    /// UTF-8 string (`char(4) stockSymbol`).
    Str,
    /// A timestamp in some time domain.
    Timestamp,
}

impl DataType {
    /// Whether a value of type `other` can be used where `self` is
    /// expected. NULL is compatible with everything, and ints coerce to
    /// floats.
    pub fn accepts(self, other: DataType) -> bool {
        self == other
            || other == DataType::Null
            || self == DataType::Null
            || (self == DataType::Float && other == DataType::Int)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Null => "NULL",
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STRING",
            DataType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

/// A single scalar value.
///
/// Strings are reference-counted so that cloning a value (which happens on
/// every join concatenation) is cheap.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(Arc<str>),
    /// Timestamp (logical or physical; see [`crate::time`]).
    Ts(Timestamp),
}

impl Value {
    /// Construct a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The [`DataType`] of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Ts(_) => DataType::Timestamp,
        }
    }

    /// True iff this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer view, coercing from Bool; `None` for other types.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Float view, coercing from Int; `None` for other types.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Boolean view; `None` for non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Timestamp view; `None` for non-timestamps.
    pub fn as_ts(&self) -> Option<Timestamp> {
        match self {
            Value::Ts(t) => Some(*t),
            _ => None,
        }
    }

    /// SQL three-valued comparison. Returns `None` when either side is
    /// NULL or the types are incomparable (e.g. string vs int), mirroring
    /// SQL's `UNKNOWN`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Ts(a), Value::Ts(b)) => a.partial_cmp(b),
            // Numeric cross-type comparison goes through f64.
            (a, b) => {
                let (x, y) = (a.as_float()?, b.as_float()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Equality usable as a hash-join key: NULL never equals anything
    /// (including NULL), and Int/Float compare numerically.
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.sql_cmp(other) == Some(Ordering::Equal)
    }

    /// A hashable normalized form of this value for use as a grouping or
    /// join key. Floats are normalized through their bit pattern after
    /// canonicalizing -0.0, and integer-valued floats hash like ints so
    /// that `Int(2)` and `Float(2.0)` land in the same bucket (they are
    /// `sql_eq`).
    pub fn key_bytes(&self) -> KeyRepr {
        match self {
            Value::Null => KeyRepr::Null,
            Value::Bool(b) => KeyRepr::Int(*b as i64),
            Value::Int(i) => KeyRepr::Int(*i),
            Value::Float(f) => {
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                    KeyRepr::Int(*f as i64)
                } else {
                    let canon = if *f == 0.0 { 0.0 } else { *f };
                    KeyRepr::FloatBits(canon.to_bits())
                }
            }
            Value::Str(s) => KeyRepr::Str(s.clone()),
            Value::Ts(t) => KeyRepr::Int(t.ticks()),
        }
    }
}

/// Normalized key representation: hashable and equality-consistent with
/// [`Value::sql_eq`] for non-NULL values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyRepr {
    /// NULL key (never joins, but groups into its own bucket for GROUP BY).
    Null,
    /// Integer-like key.
    Int(i64),
    /// Non-integral float via bit pattern.
    FloatBits(u64),
    /// String key.
    Str(Arc<str>),
}

impl PartialEq for Value {
    /// Structural equality (NULL == NULL here), used by tests and
    /// containers. Query evaluation must use [`Value::sql_eq`].
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Ts(a), Value::Ts(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key_bytes().hash(state);
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Ts(t) => write!(f, "{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

impl From<Timestamp> for Value {
    fn from(v: Timestamp) -> Self {
        Value::Ts(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{TimeDomain, Timestamp};

    #[test]
    fn data_type_display_and_accepts() {
        assert_eq!(DataType::Int.to_string(), "INT");
        assert!(DataType::Float.accepts(DataType::Int));
        assert!(!DataType::Int.accepts(DataType::Float));
        assert!(DataType::Str.accepts(DataType::Null));
        assert!(DataType::Null.accepts(DataType::Str));
    }

    #[test]
    fn sql_cmp_basic() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::str("a").sql_cmp(&Value::str("b")),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_numeric_coercion() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn sql_eq_null_semantics() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(Value::Int(3).sql_eq(&Value::Int(3)));
        assert!(Value::Int(3).sql_eq(&Value::Float(3.0)));
    }

    #[test]
    fn incomparable_types_yield_unknown() {
        assert_eq!(Value::str("x").sql_cmp(&Value::Int(1)), None);
        assert!(!Value::str("x").sql_eq(&Value::Bool(true)));
    }

    #[test]
    fn key_repr_consistent_with_sql_eq() {
        // Int(2) and Float(2.0) are sql_eq, so keys must match.
        assert_eq!(Value::Int(2).key_bytes(), Value::Float(2.0).key_bytes());
        // Distinct non-integral floats differ.
        assert_ne!(
            Value::Float(2.5).key_bytes(),
            Value::Float(2.25).key_bytes()
        );
        // Negative zero normalizes to zero.
        assert_eq!(
            Value::Float(-0.0).key_bytes(),
            Value::Float(0.0).key_bytes()
        );
    }

    #[test]
    fn timestamps_compare_within_domain_only() {
        let d0 = TimeDomain(0);
        let d1 = TimeDomain(1);
        let a = Value::Ts(Timestamp::new(d0, 5));
        let b = Value::Ts(Timestamp::new(d0, 9));
        let c = Value::Ts(Timestamp::new(d1, 9));
        assert_eq!(a.sql_cmp(&b), Some(Ordering::Less));
        assert_eq!(a.sql_cmp(&c), None, "cross-domain time is unordered");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("MSFT").to_string(), "MSFT");
    }
}
