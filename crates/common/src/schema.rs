//! Schemas: named, typed field layouts for streams and tables.

use std::fmt;
use std::sync::Arc;

use crate::error::{Result, TcqError};
use crate::value::DataType;

/// One column: a name and a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (case-insensitive resolution, stored lowercased).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// A field with `name` (lowercased) and `data_type`.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Field {
        Field {
            name: name.into().to_ascii_lowercase(),
            data_type,
        }
    }
}

/// A relation schema: an ordered list of fields, each optionally qualified
/// by the relation (stream/table/alias) it came from.
///
/// Join outputs concatenate schemas, so a column is addressed either by
/// bare name (when unambiguous) or by `qualifier.name`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<[(Option<String>, Field)]>,
}

impl Schema {
    /// A schema where every field is qualified by `qualifier`.
    pub fn qualified(qualifier: impl Into<String>, fields: Vec<Field>) -> Schema {
        let q = qualifier.into().to_ascii_lowercase();
        Schema {
            fields: fields.into_iter().map(|f| (Some(q.clone()), f)).collect(),
        }
    }

    /// A schema with unqualified fields (e.g. expression outputs).
    pub fn unqualified(fields: Vec<Field>) -> Schema {
        Schema {
            fields: fields.into_iter().map(|f| (None, f)).collect(),
        }
    }

    /// Concatenate two schemas (join output layout).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = Vec::with_capacity(self.len() + other.len());
        fields.extend_from_slice(&self.fields);
        fields.extend_from_slice(&other.fields);
        Schema {
            fields: fields.into(),
        }
    }

    /// The same fields re-qualified under a new alias.
    pub fn with_qualifier(&self, qualifier: impl Into<String>) -> Schema {
        let q = qualifier.into().to_ascii_lowercase();
        Schema {
            fields: self
                .fields
                .iter()
                .map(|(_, f)| (Some(q.clone()), f.clone()))
                .collect(),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True iff there are no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The field at position `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx].1
    }

    /// The qualifier of the field at position `idx`.
    pub fn qualifier(&self, idx: usize) -> Option<&str> {
        self.fields[idx].0.as_deref()
    }

    /// Iterate `(qualifier, field)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Option<&str>, &Field)> {
        self.fields.iter().map(|(q, f)| (q.as_deref(), f))
    }

    /// Resolve a column reference to its position.
    ///
    /// `qualifier` narrows the search to one relation; without it the bare
    /// name must be unambiguous across the whole schema.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let name = name.to_ascii_lowercase();
        let qualifier = qualifier.map(|q| q.to_ascii_lowercase());
        let mut found: Option<usize> = None;
        for (i, (q, f)) in self.fields.iter().enumerate() {
            if f.name != name {
                continue;
            }
            if let Some(want) = &qualifier {
                if q.as_deref() != Some(want.as_str()) {
                    continue;
                }
            }
            if let Some(prev) = found {
                return Err(TcqError::AmbiguousColumn {
                    name,
                    first: prev,
                    second: i,
                });
            }
            found = Some(i);
        }
        found.ok_or_else(|| TcqError::UnknownColumn {
            qualifier: qualifier.clone(),
            name,
        })
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, (q, field)) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            if let Some(q) = q {
                write!(f, "{q}.")?;
            }
            write!(f, "{}: {}", field.name, field.data_type)?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stocks() -> Schema {
        Schema::qualified(
            "closingstockprices",
            vec![
                Field::new("timestamp", DataType::Int),
                Field::new("stockSymbol", DataType::Str),
                Field::new("closingPrice", DataType::Float),
            ],
        )
    }

    #[test]
    fn resolve_by_bare_name_case_insensitive() {
        let s = stocks();
        assert_eq!(s.resolve(None, "CLOSINGPRICE").unwrap(), 2);
        assert_eq!(s.resolve(None, "stocksymbol").unwrap(), 1);
    }

    #[test]
    fn resolve_by_qualifier() {
        let s = stocks();
        assert_eq!(
            s.resolve(Some("ClosingStockPrices"), "timestamp").unwrap(),
            0
        );
        assert!(s.resolve(Some("other"), "timestamp").is_err());
    }

    #[test]
    fn join_schema_detects_ambiguity() {
        let c1 = stocks().with_qualifier("c1");
        let c2 = stocks().with_qualifier("c2");
        let j = c1.join(&c2);
        assert_eq!(j.len(), 6);
        assert!(matches!(
            j.resolve(None, "closingprice"),
            Err(TcqError::AmbiguousColumn { .. })
        ));
        assert_eq!(j.resolve(Some("c2"), "closingprice").unwrap(), 5);
    }

    #[test]
    fn unknown_column_error() {
        let s = stocks();
        assert!(matches!(
            s.resolve(None, "volume"),
            Err(TcqError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn display_lists_columns() {
        let s = Schema::unqualified(vec![Field::new("x", DataType::Int)]);
        assert_eq!(s.to_string(), "(x: INT)");
    }
}
