//! Byte-accounted memory budgets for in-flight tuple data.
//!
//! Under a flood, the engine's queues are bounded in *tuples*
//! (`Config::input_queue`) but a tuple's footprint varies by orders of
//! magnitude (one `Int` vs. a wide row of strings), so tuple-bounded
//! queues alone cannot promise bounded memory. A [`MemBudget`] closes
//! that gap with lock-light byte accounting: the Wrapper *charges* an
//! estimate for every batch it fans out to the Execution Objects and
//! the EOs *release* the identical estimate when they consume (or
//! shedding evicts) the batch, so `used` tracks the bytes currently
//! in flight between admission and execution.
//!
//! Enforcement happens **before** admission: when a batch would push
//! `used` past the limit, the ingress forces the shed machinery
//! (evict-oldest to make room, else drop the batch and count it shed)
//! instead of admitting — which is what makes `high_water <= limit` an
//! invariant rather than an aspiration, and an OOM kill impossible to
//! reach through the ingest path.
//!
//! The estimate ([`approx_tuples_bytes`]) is deliberately a *deep*
//! per-copy upper bound: broadcast fan-out shares tuple payloads via
//! `Arc`, so the budget over-counts shared bytes. Over-counting is the
//! safe direction for a limit — the engine stays under budget even if
//! every `Arc` were the last owner.
//!
//! A [`BudgetSet`] pairs one optional global budget with optional
//! per-stream budgets (one noisy stream must not starve the rest of
//! the engine's headroom); `tcq$*` system streams are exempt, because
//! introspection must keep flowing precisely when the engine is under
//! pressure.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::tuple::Tuple;

/// One byte-accounted budget (global or per-stream): a limit plus
/// atomically maintained usage counters. All methods are lock-free.
#[derive(Debug)]
pub struct MemBudget {
    limit: u64,
    used: AtomicU64,
    high_water: AtomicU64,
    charged: AtomicU64,
    released: AtomicU64,
    denials: AtomicU64,
}

impl MemBudget {
    /// A budget of `limit` bytes.
    pub fn new(limit: u64) -> MemBudget {
        MemBudget {
            limit,
            used: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
            charged: AtomicU64::new(0),
            released: AtomicU64::new(0),
            denials: AtomicU64::new(0),
        }
    }

    /// The configured limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Bytes currently charged.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// The most bytes ever charged at once. With enforcement at the
    /// ingress this never exceeds [`MemBudget::limit`].
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Cumulative bytes charged / released over the budget's lifetime.
    pub fn totals(&self) -> (u64, u64) {
        (
            self.charged.load(Ordering::Relaxed),
            self.released.load(Ordering::Relaxed),
        )
    }

    /// Times [`MemBudget::fits`] said no.
    pub fn denials(&self) -> u64 {
        self.denials.load(Ordering::Relaxed)
    }

    /// Whether `bytes` more would stay within the limit. Counts a
    /// denial when the answer is no.
    pub fn fits(&self, bytes: u64) -> bool {
        if self.used().saturating_add(bytes) <= self.limit {
            true
        } else {
            self.denials.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Charge `bytes` unconditionally (the caller checked
    /// [`MemBudget::fits`] first — only a single ingress thread
    /// charges, so check-then-charge cannot overshoot).
    pub fn charge(&self, bytes: u64) {
        let now = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.charged.fetch_add(bytes, Ordering::Relaxed);
        self.high_water.fetch_max(now, Ordering::Relaxed);
    }

    /// Release `bytes` (saturating: shutdown races may release after a
    /// reset, which must not wrap).
    pub fn release(&self, bytes: u64) {
        self.released.fetch_add(bytes, Ordering::Relaxed);
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Estimated deep size of a batch ([`Tuple::approx_bytes`] summed).
/// Charge and release sites must use this same function so accounting
/// is exactly symmetric.
pub fn approx_tuples_bytes(tuples: &[Tuple]) -> u64 {
    tuples.iter().map(|t| t.approx_bytes() as u64).sum()
}

/// [`approx_tuples_bytes`] for a mini-partition-keyed batch (the
/// partitioned fan-out's message shape).
pub fn approx_keyed_tuples_bytes(part: &[(u32, Tuple)]) -> u64 {
    part.iter().map(|(_, t)| t.approx_bytes() as u64).sum()
}

/// One registered stream's budget membership.
#[derive(Debug)]
struct StreamSlot {
    /// System (`tcq$*`) streams are wholly exempt — charges, releases
    /// and fits checks all no-op, so introspection rows flow (and cost
    /// nothing against the limit) precisely when the engine is under
    /// pressure reporting on itself.
    exempt: bool,
    /// The per-stream budget, when a per-stream limit is configured.
    budget: Option<Arc<MemBudget>>,
}

/// The engine's budgets: at most one global, plus at most one
/// per-stream (same per-stream limit for every non-system stream).
/// Constructed only when a limit is configured, so the unbudgeted
/// engine pays nothing.
#[derive(Debug)]
pub struct BudgetSet {
    global: Option<MemBudget>,
    stream_limit: Option<u64>,
    /// Indexed by global stream id (registration order).
    streams: RwLock<Vec<StreamSlot>>,
}

impl BudgetSet {
    /// A budget set from the configured limits; `None` when neither
    /// limit is set (budgeting off).
    pub fn new(global: Option<u64>, per_stream: Option<u64>) -> Option<Arc<BudgetSet>> {
        if global.is_none() && per_stream.is_none() {
            return None;
        }
        Some(Arc::new(BudgetSet {
            global: global.map(MemBudget::new),
            stream_limit: per_stream,
            streams: RwLock::new(Vec::new()),
        }))
    }

    /// Register the next stream (call in global-stream-id order).
    /// System streams are exempt from budgeting entirely.
    pub fn register_stream(&self, system: bool) {
        let mut v = self.streams.write().unwrap();
        let budget = match self.stream_limit {
            Some(limit) if !system => Some(Arc::new(MemBudget::new(limit))),
            _ => None,
        };
        v.push(StreamSlot {
            exempt: system,
            budget,
        });
    }

    /// Whether stream `gid` is exempt from budgeting. Unregistered gids
    /// are treated as budgeted (global limit still applies).
    fn exempt(&self, gid: usize) -> bool {
        self.streams
            .read()
            .unwrap()
            .get(gid)
            .is_some_and(|s| s.exempt)
    }

    /// The global budget, if one is configured.
    pub fn global(&self) -> Option<&MemBudget> {
        self.global.as_ref()
    }

    /// Stream `gid`'s budget, if it has one.
    pub fn stream(&self, gid: usize) -> Option<Arc<MemBudget>> {
        self.streams
            .read()
            .unwrap()
            .get(gid)
            .and_then(|s| s.budget.clone())
    }

    /// Every per-stream budget, as `(gid, budget)` pairs (for gauge
    /// emission).
    pub fn streams_snapshot(&self) -> Vec<(usize, Arc<MemBudget>)> {
        self.streams
            .read()
            .unwrap()
            .iter()
            .enumerate()
            .filter_map(|(gid, s)| s.budget.clone().map(|b| (gid, b)))
            .collect()
    }

    /// Whether charging `bytes` against stream `gid` stays within both
    /// the global and the stream budget. Always true for exempt
    /// streams.
    pub fn fits(&self, gid: usize, bytes: u64) -> bool {
        if self.exempt(gid) {
            return true;
        }
        let global_ok = self.global.as_ref().is_none_or(|b| b.fits(bytes));
        let stream_ok = self.stream(gid).is_none_or(|b| b.fits(bytes));
        global_ok && stream_ok
    }

    /// Whether `bytes` could *ever* fit (even against empty budgets) —
    /// the escape hatch for a single batch larger than a limit, which
    /// would otherwise wait for headroom that can never appear.
    pub fn fits_ever(&self, gid: usize, bytes: u64) -> bool {
        if self.exempt(gid) {
            return true;
        }
        let global_ok = self.global.as_ref().is_none_or(|b| bytes <= b.limit());
        let stream_ok = self.stream(gid).is_none_or(|b| bytes <= b.limit());
        global_ok && stream_ok
    }

    /// Charge `bytes` against stream `gid` (and the global budget).
    /// No-op for exempt streams.
    pub fn charge(&self, gid: usize, bytes: u64) {
        if self.exempt(gid) {
            return;
        }
        if let Some(b) = &self.global {
            b.charge(bytes);
        }
        if let Some(b) = self.stream(gid) {
            b.charge(bytes);
        }
    }

    /// Release `bytes` charged against stream `gid`. No-op for exempt
    /// streams (nothing was charged).
    pub fn release(&self, gid: usize, bytes: u64) {
        if self.exempt(gid) {
            return;
        }
        if let Some(b) = &self.global {
            b.release(bytes);
        }
        if let Some(b) = self.stream(gid) {
            b.release(bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn tuple(vals: Vec<Value>) -> Tuple {
        Tuple::at_seq(vals, 0)
    }

    #[test]
    fn charge_release_symmetry() {
        let b = MemBudget::new(1000);
        assert!(b.fits(600));
        b.charge(600);
        assert_eq!(b.used(), 600);
        assert!(!b.fits(600), "would exceed");
        assert_eq!(b.denials(), 1);
        b.release(600);
        assert_eq!(b.used(), 0);
        assert_eq!(b.high_water(), 600);
        assert_eq!(b.totals(), (600, 600));
    }

    #[test]
    fn release_saturates() {
        let b = MemBudget::new(10);
        b.charge(4);
        b.release(9);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn estimator_scales_with_payload() {
        let small = approx_tuples_bytes(&[tuple(vec![Value::Int(1)])]);
        let big = approx_tuples_bytes(&[tuple(vec![Value::str("x".repeat(1000))])]);
        assert!(small > 0);
        assert!(big >= small + 1000, "strings charge their length");
    }

    #[test]
    fn budget_set_enforces_both_limits() {
        let set = BudgetSet::new(Some(100), Some(40)).unwrap();
        set.register_stream(false); // gid 0
        set.register_stream(false); // gid 1
        assert!(set.fits(0, 40));
        set.charge(0, 40);
        assert!(!set.fits(0, 1), "stream budget exhausted");
        assert!(set.fits(1, 40), "sibling stream has its own budget");
        set.charge(1, 40);
        assert!(!set.fits(1, 30), "global budget near exhausted");
        set.release(0, 40);
        set.release(1, 40);
        assert_eq!(set.global().unwrap().used(), 0);
        assert_eq!(set.stream(0).unwrap().used(), 0);
        assert_eq!(set.streams_snapshot().len(), 2);
    }

    #[test]
    fn system_streams_fully_exempt() {
        let set = BudgetSet::new(Some(100), Some(40)).unwrap();
        set.register_stream(false); // gid 0
        set.register_stream(true); // gid 1: tcq$* exempt
        assert!(set.stream(1).is_none());
        // Exempt charges never touch the global budget: introspection
        // cannot push a loaded engine past its limit, and the matching
        // releases cannot corrupt the accounting either.
        set.charge(1, 1_000_000);
        assert_eq!(set.global().unwrap().used(), 0);
        assert!(set.fits(1, 1_000_000));
        set.release(1, 1_000_000);
        assert_eq!(set.global().unwrap().used(), 0);
        // fits_ever: a batch bigger than the limit can never fit.
        assert!(!set.fits_ever(0, 101));
        assert!(set.fits_ever(0, 40));
        assert!(!set.fits_ever(0, 41), "per-stream limit binds too");
        assert!(set.fits_ever(1, 1 << 40), "exempt always fits");
    }

    #[test]
    fn disabled_when_unconfigured() {
        assert!(BudgetSet::new(None, None).is_none());
    }
}
