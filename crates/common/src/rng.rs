//! A small deterministic PRNG for library-internal randomized decisions.
//!
//! The lottery-based Eddy routing policy needs a cheap random source on its
//! hot path, and tests need it to be seedable and reproducible. We use
//! SplitMix64 — tiny state, good enough statistical quality for routing
//! choices — rather than pulling `rand` into library crates (`rand` is
//! reserved for workload generation in dev/bench code per DESIGN.md).
//!
//! # Stream splitting
//!
//! Every seeded consumer in the engine (eddy lotteries, shed sampling,
//! source-backoff jitter, Flux fault schedules, the simulation
//! scheduler) derives its generator from one root seed via
//! [`SplitMix64::derive`]. A derived stream is keyed by a `domain`
//! string plus an index, so adding a new consumer or reordering draws in
//! one domain never perturbs any other domain's sequence — the property
//! the deterministic-replay harness depends on. Never share one
//! `SplitMix64` between two components; derive one per component.

/// SplitMix64: a 64-bit deterministic PRNG.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Derive an independent child stream from `seed`, keyed by a
    /// `domain` label and an `index` within that domain.
    ///
    /// The label is hashed (FNV-1a) together with the index and mixed
    /// through one SplitMix64 finalizer round, so distinct
    /// `(domain, index)` pairs land on well-separated points of the
    /// state space. Use a stable, descriptive domain per consumer
    /// (e.g. `"wrapper.backoff"`, `"shed"`, `"sim.sched"`) and the
    /// index for per-instance fan-out (stream gid, EO id, episode
    /// number). Draws taken from one derived stream never affect
    /// another, which is what makes seed-replay stable as the engine
    /// grows new randomized components.
    pub fn derive(seed: u64, domain: &str, index: u64) -> SplitMix64 {
        // FNV-1a over the domain bytes keeps the label's identity
        // without needing a hash dependency.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in domain.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Mix seed, domain hash, and index through one generator round
        // each so nearby indices do not produce nearby states.
        let mut mixer = SplitMix64::new(seed ^ h);
        let a = mixer.next_u64();
        let mut mixer = SplitMix64::new(a ^ index);
        SplitMix64::new(mixer.next_u64())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift rejection-free approximation is fine for
        // routing decisions; the bias for bounds << 2^64 is negligible.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Pick an index proportionally to `weights` (the lottery draw).
    /// Returns `None` when all weights are zero or the slice is empty.
    pub fn weighted_pick(&mut self, weights: &[u64]) -> Option<usize> {
        let total: u64 = weights.iter().sum();
        if total == 0 {
            return None;
        }
        let mut draw = self.next_below(total);
        for (i, &w) in weights.iter().enumerate() {
            if draw < w {
                return Some(i);
            }
            draw -= w;
        }
        unreachable!("draw < total is guaranteed by next_below")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let mut r = SplitMix64::new(123);
        let weights = [1u64, 0, 9];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.weighted_pick(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight entry never picked");
        assert!(counts[2] > counts[0] * 5, "9:1 weight ratio roughly held");
    }

    #[test]
    fn weighted_pick_degenerate_cases() {
        let mut r = SplitMix64::new(1);
        assert_eq!(r.weighted_pick(&[]), None);
        assert_eq!(r.weighted_pick(&[0, 0]), None);
        assert_eq!(r.weighted_pick(&[5]), Some(0));
    }

    #[test]
    fn derive_is_deterministic_and_domain_separated() {
        let mut a = SplitMix64::derive(42, "wrapper.backoff", 0);
        let mut b = SplitMix64::derive(42, "wrapper.backoff", 0);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Different domain, same seed/index → different stream.
        let mut c = SplitMix64::derive(42, "shed", 0);
        assert_ne!(SplitMix64::derive(42, "wrapper.backoff", 0).next_u64(), {
            c.next_u64()
        });
        // Different index within a domain → different stream.
        let mut d0 = SplitMix64::derive(42, "shed", 0);
        let mut d1 = SplitMix64::derive(42, "shed", 1);
        assert_ne!(d0.next_u64(), d1.next_u64());
        // Different root seeds → different stream.
        let mut e0 = SplitMix64::derive(1, "sim.sched", 9);
        let mut e1 = SplitMix64::derive(2, "sim.sched", 9);
        assert_ne!(e0.next_u64(), e1.next_u64());
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SplitMix64::new(99);
        let mut buckets = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            buckets[r.next_below(10) as usize] += 1;
        }
        for &b in &buckets {
            let expected = n / 10;
            assert!(
                (b as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket count {b} too far from {expected}"
            );
        }
    }
}
