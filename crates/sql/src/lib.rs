//! # tcq-sql
//!
//! The CQ-SQL front end: "dataflows are initiated by clients either via
//! an ad hoc query language (a basic version of SQL), or via a scripting
//! language for representing dataflow graphs explicitly" (§2.1). This
//! crate is the former: a lexer, recursive-descent parser, analyzer and
//! adaptive-plan compiler for the dialect the paper's §4.1 examples use.
//!
//! ## Grammar
//!
//! ```text
//! query      := SELECT [DISTINCT] select_list FROM from_list
//!               [ WHERE predicate ] [ GROUP BY columns ] [ for_loop ]
//! select_list:= '*' | item (',' item)*
//! item       := expr [AS ident] | AGG '(' expr | '*' ')' [AS ident]
//! from_list  := relation (',' relation)*     -- relation := name [alias]
//! for_loop   := FOR '(' [t '=' int] ';' cond ';' change ')'
//!               '{' window_is* '}'
//! cond       := 't' ('<' | '<=') int | 't' '==' int | /* empty: forever */
//! change     := 't' '++' | 't' '--' | 't' '+=' int | 't' '-=' int
//!               | 't' '=' int
//! window_is  := WINDOWIS '(' name ',' bound ',' bound ')' ';'
//! bound      := affine over 't':  [int '*'] 't' [('+'|'-') int] | int
//! ```
//!
//! All of the paper's §4.1 stock-quote examples (snapshot, landmark,
//! sliding, hopping windows) parse under this grammar; see the tests in
//! [`parser`] which use them verbatim (modulo the `for`-loop's C-style
//! `t++`).
//!
//! ## Pipeline
//!
//! text → [`lexer::tokenize`] → [`parser::parse`] ([`ast`]) →
//! [`plan::Planner::plan`] (binds names against a
//! [`tcq_common::Catalog`], decomposes the WHERE clause into boolean
//! factors, extracts equi-join edges) → [`plan::QueryPlan`] →
//! [`plan::QueryPlan::build_eddy`] (an adaptive [`tcq_eddy::Eddy`] plan
//! with grouped filters and SteMs — "the server parses, analyzes, and
//! optimizes it into an adaptive plan, that is, a plan that includes the
//! adaptive operators described in Section 2").

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use ast::QueryAst;
pub use parser::parse;
pub use plan::{BoundStream, JoinEdge, OutputCol, Planner, QueryPlan};
