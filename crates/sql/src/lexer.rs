//! Tokenizer for CQ-SQL.

use tcq_common::{Result, TcqError};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (unquoted; keywords are matched
    /// case-insensitively by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=` (also accepts `==`)
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `++`
    PlusPlus,
    /// `--` (decrement; SQL comments are not supported in queries)
    MinusMinus,
    /// `+=`
    PlusEq,
    /// `-=`
    MinusEq,
}

/// A token with its byte offset in the source (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Byte offset where it starts.
    pub offset: usize,
}

/// Tokenize `src` completely.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            c if c.is_ascii_whitespace() => {
                i += 1;
                continue;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                // `$` continues (but cannot start) an identifier, for the
                // system introspection streams (`tcq$queues`, ...).
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric()
                        || bytes[j] == b'_'
                        || bytes[j] == b'$')
                {
                    j += 1;
                }
                out.push(Spanned {
                    tok: Tok::Ident(src[i..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                let mut is_float = false;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_digit() {
                        j += 1;
                    } else if d == '.'
                        && !is_float
                        && j + 1 < bytes.len()
                        && (bytes[j + 1] as char).is_ascii_digit()
                    {
                        is_float = true;
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text = &src[i..j];
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| TcqError::ParseError {
                        offset: start,
                        message: format!("bad float literal {text}"),
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| TcqError::ParseError {
                        offset: start,
                        message: format!("bad integer literal {text}"),
                    })?)
                };
                out.push(Spanned { tok, offset: start });
                i = j;
            }
            '\'' => {
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    if j >= bytes.len() {
                        return Err(TcqError::ParseError {
                            offset: start,
                            message: "unterminated string literal".into(),
                        });
                    }
                    if bytes[j] == b'\'' {
                        // '' escapes a quote.
                        if j + 1 < bytes.len() && bytes[j + 1] == b'\'' {
                            s.push('\'');
                            j += 2;
                            continue;
                        }
                        break;
                    }
                    s.push(bytes[j] as char);
                    j += 1;
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    offset: start,
                });
                i = j + 1;
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let (tok, len) = match two {
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "<>" => (Tok::Ne, 2),
                    "!=" => (Tok::Ne, 2),
                    "==" => (Tok::Eq, 2),
                    "++" => (Tok::PlusPlus, 2),
                    "--" => (Tok::MinusMinus, 2),
                    "+=" => (Tok::PlusEq, 2),
                    "-=" => (Tok::MinusEq, 2),
                    _ => match c {
                        ',' => (Tok::Comma, 1),
                        '(' => (Tok::LParen, 1),
                        ')' => (Tok::RParen, 1),
                        '{' => (Tok::LBrace, 1),
                        '}' => (Tok::RBrace, 1),
                        ';' => (Tok::Semi, 1),
                        '.' => (Tok::Dot, 1),
                        '*' => (Tok::Star, 1),
                        '+' => (Tok::Plus, 1),
                        '-' => (Tok::Minus, 1),
                        '/' => (Tok::Slash, 1),
                        '%' => (Tok::Percent, 1),
                        '=' => (Tok::Eq, 1),
                        '<' => (Tok::Lt, 1),
                        '>' => (Tok::Gt, 1),
                        other => {
                            return Err(TcqError::ParseError {
                                offset: start,
                                message: format!("unexpected character {other:?}"),
                            })
                        }
                    },
                };
                out.push(Spanned { tok, offset: start });
                i += len;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_symbols() {
        assert_eq!(
            toks("SELECT * FROM s WHERE a >= 5"),
            vec![
                Tok::Ident("SELECT".into()),
                Tok::Star,
                Tok::Ident("FROM".into()),
                Tok::Ident("s".into()),
                Tok::Ident("WHERE".into()),
                Tok::Ident("a".into()),
                Tok::Ge,
                Tok::Int(5),
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("50.00 42 3.5"),
            vec![Tok::Float(50.0), Tok::Int(42), Tok::Float(3.5)]
        );
        // A trailing dot is a Dot token, not part of the number.
        assert_eq!(toks("5."), vec![Tok::Int(5), Tok::Dot]);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks("'MSFT'"), vec![Tok::Str("MSFT".into())]);
        assert_eq!(toks("'it''s'"), vec![Tok::Str("it's".into())]);
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn compound_operators() {
        assert_eq!(
            toks("t++ t-- t+=2 t-=2 t==0 a<>b a!=b"),
            vec![
                Tok::Ident("t".into()),
                Tok::PlusPlus,
                Tok::Ident("t".into()),
                Tok::MinusMinus,
                Tok::Ident("t".into()),
                Tok::PlusEq,
                Tok::Int(2),
                Tok::Ident("t".into()),
                Tok::MinusEq,
                Tok::Int(2),
                Tok::Ident("t".into()),
                Tok::Eq,
                Tok::Int(0),
                Tok::Ident("a".into()),
                Tok::Ne,
                Tok::Ident("b".into()),
                Tok::Ident("a".into()),
                Tok::Ne,
                Tok::Ident("b".into()),
            ]
        );
    }

    #[test]
    fn qualified_names() {
        assert_eq!(
            toks("c1.closingPrice"),
            vec![
                Tok::Ident("c1".into()),
                Tok::Dot,
                Tok::Ident("closingPrice".into()),
            ]
        );
    }

    #[test]
    fn dollar_continues_identifiers_for_system_streams() {
        assert_eq!(toks("tcq$queues"), vec![Tok::Ident("tcq$queues".into())]);
        // But `$` cannot start an identifier.
        match tokenize("$x") {
            Err(TcqError::ParseError { offset, .. }) => assert_eq!(offset, 0),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn offsets_reported() {
        let ts = tokenize("ab  cd").unwrap();
        assert_eq!(ts[0].offset, 0);
        assert_eq!(ts[1].offset, 4);
    }

    #[test]
    fn bad_character_errors_with_offset() {
        match tokenize("a @ b") {
            Err(TcqError::ParseError { offset, .. }) => assert_eq!(offset, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
