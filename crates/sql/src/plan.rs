//! The analyzer and adaptive-plan compiler.
//!
//! [`Planner::plan`] binds a parsed query against the catalog and
//! produces a [`QueryPlan`]: streams with their full-layout offsets, the
//! WHERE clause decomposed into boolean factors (single- and
//! multi-variable filters plus equi-join edges), resolved projections
//! and aggregates, and the window sequence. [`QueryPlan::build_eddy`]
//! then emits the adaptive plan — an Eddy wired with filter modules and
//! SteMs — that the executor folds into its running dataflow.

use tcq_common::{
    Catalog, CmpOp, Consistency, Expr, Field, Result, Schema, StreamKind, TcqError, Tuple, Value,
};
use tcq_eddy::{Eddy, EddyBuilder, FilterOp, Layout, RoutingPolicy, StemOp};
use tcq_windows::{AggKind, Bound, ForLoop, LoopCond, WindowIs, WindowSeq};

use crate::ast::{AstExpr, AstForLoop, AstLoopCond, AstLoopStep, QueryAst, SelectItem};

/// A FROM-list stream bound to the catalog.
#[derive(Debug, Clone)]
pub struct BoundStream {
    /// Catalog name.
    pub name: String,
    /// Alias used in the query (defaults to the name).
    pub alias: String,
    /// Column layout.
    pub schema: Schema,
    /// Whether it is a live stream or a static table in the catalog.
    pub kind: StreamKind,
    /// Offset of this stream's first column in the full layout.
    pub offset: usize,
    /// Number of columns.
    pub arity: usize,
    /// Whether the query declared a window over it (absent ⇒ treated as
    /// a static table, per §4.1.1).
    pub windowed: bool,
}

/// An equi-join boolean factor: full-layout columns that must be equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinEdge {
    /// One side (full-layout column).
    pub a: usize,
    /// Other side (full-layout column).
    pub b: usize,
}

/// A resolved output column.
#[derive(Debug, Clone)]
pub struct OutputCol {
    /// Column name in the result schema.
    pub name: String,
    /// Scalar projection, or `None` for aggregate outputs.
    pub expr: Option<Expr>,
    /// Aggregate, when this output is one.
    pub agg: Option<(AggKind, Option<Expr>)>,
}

/// A fully analyzed continuous query.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Streams in FROM order (their order defines the full layout).
    pub streams: Vec<BoundStream>,
    /// Non-join boolean factors (full-layout expressions).
    pub filters: Vec<Expr>,
    /// Equi-join edges.
    pub joins: Vec<JoinEdge>,
    /// Output columns (projections and/or aggregates).
    pub outputs: Vec<OutputCol>,
    /// GROUP BY columns (full layout), when aggregating.
    pub group_by: Vec<Expr>,
    /// The window sequence, if the query declared one.
    pub window: Option<WindowSeq>,
    /// `SELECT DISTINCT`: result rows are duplicate-eliminated.
    pub distinct: bool,
    /// ORDER BY: output column positions with descending flags, applied
    /// per result set.
    pub order_by: Vec<(usize, bool)>,
    /// Per-query consistency level from `WITH CONSISTENCY`; `None`
    /// defers to the engine default (see `Config::consistency`).
    pub consistency: Option<Consistency>,
}

/// Plans queries against a catalog.
#[derive(Debug, Clone)]
pub struct Planner {
    catalog: Catalog,
}

impl Planner {
    /// A planner over `catalog`.
    pub fn new(catalog: Catalog) -> Planner {
        Planner { catalog }
    }

    /// Parse and plan in one step.
    pub fn plan_sql(&self, sql: &str) -> Result<QueryPlan> {
        self.plan(&crate::parser::parse(sql)?)
    }

    /// Analyze a parsed query.
    pub fn plan(&self, ast: &QueryAst) -> Result<QueryPlan> {
        // 1. Bind FROM items.
        let mut streams = Vec::new();
        let mut joint = Schema::unqualified(vec![]);
        let mut offset = 0;
        for item in &ast.from {
            let def = self.catalog.lookup(&item.name)?;
            let alias = item
                .alias
                .clone()
                .unwrap_or_else(|| item.name.clone())
                .to_ascii_lowercase();
            if streams.iter().any(|s: &BoundStream| s.alias == alias) {
                return Err(TcqError::PlanError(format!(
                    "duplicate relation alias {alias}"
                )));
            }
            let schema = def.schema.with_qualifier(alias.clone());
            joint = joint.join(&schema);
            let arity = schema.len();
            streams.push(BoundStream {
                name: def.name.clone(),
                alias,
                schema,
                kind: def.kind,
                offset,
                arity,
                windowed: false,
            });
            offset += arity;
        }

        // 2. Resolve WHERE and split into boolean factors.
        let mut filters = Vec::new();
        let mut joins = Vec::new();
        if let Some(w) = &ast.where_clause {
            let resolved = resolve_expr(w, &joint)?;
            let layout = Layout::new(streams.iter().map(|s| s.arity).collect());
            for conjunct in resolved.conjuncts() {
                if let Expr::Cmp(CmpOp::Eq, a, b) = conjunct {
                    if let (Expr::Column(ca), Expr::Column(cb)) = (a.as_ref(), b.as_ref()) {
                        let sa = layout.stream_of_column(*ca);
                        let sb = layout.stream_of_column(*cb);
                        if sa != sb {
                            joins.push(JoinEdge { a: *ca, b: *cb });
                            continue;
                        }
                    }
                }
                filters.push(conjunct.clone());
            }
        }

        // 3. Resolve the SELECT list and GROUP BY.
        let group_by: Vec<Expr> = ast
            .group_by
            .iter()
            .map(|g| resolve_expr(g, &joint))
            .collect::<Result<_>>()?;
        let mut outputs = Vec::new();
        let mut has_agg = false;
        for (i, item) in ast.select.iter().enumerate() {
            match item {
                SelectItem::Star => {
                    for (pos, (q, f)) in joint.iter().enumerate() {
                        let name = match q {
                            Some(q) if ast.from.len() > 1 => format!("{q}.{}", f.name),
                            _ => f.name.clone(),
                        };
                        outputs.push(OutputCol {
                            name,
                            expr: Some(Expr::Column(pos)),
                            agg: None,
                        });
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let resolved = resolve_expr(expr, &joint)?;
                    let name = alias.clone().unwrap_or_else(|| default_name(expr, i));
                    outputs.push(OutputCol {
                        name,
                        expr: Some(resolved),
                        agg: None,
                    });
                }
                SelectItem::Agg { func, arg, alias } => {
                    has_agg = true;
                    let kind = AggKind::from_name(func)
                        .ok_or_else(|| TcqError::PlanError(format!("unknown aggregate {func}")))?;
                    let arg = match arg {
                        None if kind == AggKind::Count => None,
                        None => {
                            return Err(TcqError::PlanError(format!("{kind} requires an argument")))
                        }
                        Some(a) => Some(resolve_expr(a, &joint)?),
                    };
                    let name = alias
                        .clone()
                        .unwrap_or_else(|| format!("{}", kind).to_ascii_lowercase());
                    outputs.push(OutputCol {
                        name,
                        expr: None,
                        agg: Some((kind, arg)),
                    });
                }
            }
        }
        if has_agg {
            // Every plain output must be one of the GROUP BY expressions.
            for out in outputs.iter().filter(|o| o.agg.is_none()) {
                let e = out.expr.as_ref().expect("plain outputs have exprs");
                if !group_by.iter().any(|g| g == e) {
                    return Err(TcqError::PlanError(format!(
                        "column {} must appear in GROUP BY when aggregating",
                        out.name
                    )));
                }
            }
        } else if !group_by.is_empty() {
            return Err(TcqError::PlanError(
                "GROUP BY without aggregates is not supported".into(),
            ));
        }

        // 4. ORDER BY: items name output columns (by alias/name or
        //    1-based position), since sorting applies to result sets.
        let mut order_by = Vec::new();
        for (item, desc) in &ast.order_by {
            let pos = match item {
                AstExpr::Literal(Value::Int(n)) => {
                    let n = *n;
                    if n < 1 || n as usize > outputs.len() {
                        return Err(TcqError::PlanError(format!(
                            "ORDER BY position {n} out of range"
                        )));
                    }
                    n as usize - 1
                }
                AstExpr::Column {
                    qualifier: None,
                    name,
                } => {
                    let lname = name.to_ascii_lowercase();
                    outputs
                        .iter()
                        .position(|o| o.name == lname)
                        .ok_or_else(|| {
                            TcqError::PlanError(format!(
                                "ORDER BY column {name} is not an output column"
                            ))
                        })?
                }
                other => {
                    return Err(TcqError::PlanError(format!(
                        "ORDER BY supports output names or positions, got {other:?}"
                    )))
                }
            };
            order_by.push((pos, *desc));
        }

        // 5. Windows.
        let window = match &ast.window {
            None => None,
            Some(fl) => Some(plan_window(fl, &mut streams)?),
        };

        Ok(QueryPlan {
            streams,
            filters,
            joins,
            outputs,
            group_by,
            window,
            distinct: ast.distinct,
            order_by,
            consistency: ast.consistency,
        })
    }
}

/// Derive a stable output name for an unaliased select expression.
fn default_name(expr: &AstExpr, index: usize) -> String {
    match expr {
        AstExpr::Column { name, .. } => name.to_ascii_lowercase(),
        _ => format!("col{index}"),
    }
}

/// Resolve an AST expression against the joint schema.
fn resolve_expr(e: &AstExpr, schema: &Schema) -> Result<Expr> {
    Ok(match e {
        AstExpr::Column { qualifier, name } => {
            Expr::Column(schema.resolve(qualifier.as_deref(), name)?)
        }
        AstExpr::Literal(v) => Expr::Literal(v.clone()),
        AstExpr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(resolve_expr(a, schema)?),
            Box::new(resolve_expr(b, schema)?),
        ),
        AstExpr::Arith(op, a, b) => Expr::Arith(
            *op,
            Box::new(resolve_expr(a, schema)?),
            Box::new(resolve_expr(b, schema)?),
        ),
        AstExpr::And(a, b) => resolve_expr(a, schema)?.and(resolve_expr(b, schema)?),
        AstExpr::Or(a, b) => resolve_expr(a, schema)?.or(resolve_expr(b, schema)?),
        AstExpr::Not(a) => Expr::Not(Box::new(resolve_expr(a, schema)?)),
        AstExpr::IsNull(a) => Expr::IsNull(Box::new(resolve_expr(a, schema)?)),
        AstExpr::Neg(a) => Expr::Neg(Box::new(resolve_expr(a, schema)?)),
    })
}

/// Convert the AST for-loop into a [`WindowSeq`], marking windowed
/// streams.
fn plan_window(fl: &AstForLoop, streams: &mut [BoundStream]) -> Result<WindowSeq> {
    let cond = match fl.cond {
        AstLoopCond::Forever => LoopCond::Forever,
        AstLoopCond::Lt(n) => LoopCond::Lt(n),
        AstLoopCond::Le(n) => LoopCond::Le(n),
        AstLoopCond::EqOnce(n) => {
            if n != fl.init {
                return Err(TcqError::PlanError(format!(
                    "snapshot condition t == {n} never holds with t starting at {}",
                    fl.init
                )));
            }
            LoopCond::Once
        }
    };
    let step = match fl.step {
        AstLoopStep::Add(k) => k,
        AstLoopStep::Set(_) => {
            if cond != LoopCond::Once {
                return Err(TcqError::PlanError(
                    "t = <value> as the loop change is only valid in snapshot queries".into(),
                ));
            }
            -1
        }
    };
    let mut windows = Vec::new();
    for w in &fl.windows {
        let alias = w.stream.to_ascii_lowercase();
        let stream = streams
            .iter_mut()
            .find(|s| s.alias == alias)
            .ok_or_else(|| {
                TcqError::PlanError(format!("WindowIs references unknown relation {alias}"))
            })?;
        stream.windowed = true;
        windows.push(WindowIs::new(
            alias,
            Bound::affine(w.left.coeff, w.left.offset),
            Bound::affine(w.right.coeff, w.right.offset),
        ));
    }
    Ok(WindowSeq {
        header: ForLoop {
            init: fl.init,
            cond,
            step,
        },
        windows,
        domain: tcq_common::TimeDomain::LOGICAL,
    })
}

impl QueryPlan {
    /// The full-layout [`Layout`] of this plan.
    pub fn layout(&self) -> Layout {
        Layout::new(self.streams.iter().map(|s| s.arity).collect())
    }

    /// Index of the stream bound to `alias` (or name).
    pub fn stream_index(&self, alias: &str) -> Option<usize> {
        let alias = alias.to_ascii_lowercase();
        self.streams
            .iter()
            .position(|s| s.alias == alias || s.name == alias)
    }

    /// Whether any output is an aggregate.
    pub fn is_aggregating(&self) -> bool {
        self.outputs.iter().any(|o| o.agg.is_some())
    }

    /// The result schema.
    pub fn output_schema(&self) -> Schema {
        Schema::unqualified(
            self.outputs
                .iter()
                .map(|o| Field::new(o.name.clone(), tcq_common::DataType::Null))
                .collect(),
        )
    }

    /// Apply the scalar projections to a full-layout tuple (non-agg
    /// queries only).
    pub fn project(&self, tuple: &Tuple) -> Result<Tuple> {
        let fields: Vec<Value> = self
            .outputs
            .iter()
            .map(|o| {
                o.expr
                    .as_ref()
                    .expect("project() requires non-aggregate outputs")
                    .eval(tuple)
            })
            .collect::<Result<_>>()?;
        Ok(Tuple::new(fields, tuple.ts()))
    }

    /// Sort projected result rows per the plan's ORDER BY (stable;
    /// NULLs and incomparable values sort last).
    pub fn sort_rows(&self, rows: &mut [Tuple]) {
        if self.order_by.is_empty() {
            return;
        }
        rows.sort_by(|a, b| {
            for &(pos, desc) in &self.order_by {
                let (va, vb) = (a.field(pos), b.field(pos));
                let ord = match va.sql_cmp(vb) {
                    Some(o) => o,
                    // UNKNOWN (NULL / cross-type): push after comparable
                    // values, deterministically.
                    None => match (va.is_null(), vb.is_null()) {
                        (true, false) => std::cmp::Ordering::Greater,
                        (false, true) => std::cmp::Ordering::Less,
                        _ => std::cmp::Ordering::Equal,
                    },
                };
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    /// Render a human-readable description of the adaptive plan — the
    /// CQ analogue of `EXPLAIN`. Shows the execution class, the modules
    /// an eddy would be wired with, the window sequence, and the output
    /// shape.
    pub fn explain(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let class = if self.window.is_some() {
            "windowed (driver releases one result set per loop instant)"
        } else if self.streams.len() == 1
            && self.joins.is_empty()
            && !self.is_aggregating()
            && !self.filters.is_empty()
            && self
                .filters
                .iter()
                .all(|f| f.as_single_column_cmp().is_some())
        {
            "shared (folds into the CACQ grouped-filter engine)"
        } else {
            "continuous (dedicated adaptive eddy)"
        };
        let _ = writeln!(out, "Continuous Query Plan");
        let _ = writeln!(out, "  class: {class}");
        for bs in &self.streams {
            let _ = writeln!(
                out,
                "  scan: {} AS {} [{}{}]",
                bs.name,
                bs.alias,
                if bs.kind == StreamKind::Stream {
                    "stream"
                } else {
                    "table"
                },
                if bs.windowed { ", windowed" } else { "" }
            );
        }
        for f in &self.filters {
            let _ = writeln!(out, "  filter: {f}");
        }
        let layout = self.layout();
        for e in &self.joins {
            let (sa, sb) = (
                layout.stream_of_column(e.a).unwrap_or(0),
                layout.stream_of_column(e.b).unwrap_or(0),
            );
            let _ = writeln!(
                out,
                "  join (shared SteMs): {}.#{} = {}.#{}",
                self.streams[sa].alias,
                e.a - self.streams[sa].offset,
                self.streams[sb].alias,
                e.b - self.streams[sb].offset,
            );
        }
        if let Some(seq) = &self.window {
            let _ = writeln!(
                out,
                "  for-loop: init {} step {} ({:?})",
                seq.header.init, seq.header.step, seq.header.cond
            );
            for w in &seq.windows {
                let _ = writeln!(
                    out,
                    "    WindowIs({}, {}t{:+}, {}t{:+}) [{:?}]",
                    w.stream,
                    w.left.coeff,
                    w.left.offset,
                    w.right.coeff,
                    w.right.offset,
                    w.kind(seq.header.step, seq.header.cond)
                );
            }
        }
        let cols: Vec<String> = self
            .outputs
            .iter()
            .map(|o| match &o.agg {
                Some((k, _)) => format!("{}({})", k, o.name),
                None => o.name.clone(),
            })
            .collect();
        let _ = writeln!(
            out,
            "  output{}{}: ({})",
            if self.distinct { " DISTINCT" } else { "" },
            if self.order_by.is_empty() {
                ""
            } else {
                " ORDERED"
            },
            cols.join(", ")
        );
        if let Some(c) = self.consistency {
            let _ = writeln!(out, "  consistency: {c}");
        }
        out
    }

    /// Compile this plan into an adaptive Eddy plan.
    ///
    /// Filters become [`FilterOp`]s; each stream of a multi-stream query
    /// gets a [`StemOp`] whose probe specs come from its incident join
    /// edges (a stream with no incident edge gets an empty-key SteM —
    /// a cartesian building block).
    pub fn build_eddy(&self, policy: Box<dyn RoutingPolicy>) -> Result<Eddy> {
        self.build_eddy_batched(policy, 1)
    }

    /// Like [`Plan::build_eddy`], with the §4.3 batching knob set so one
    /// routing decision can cover up to `batch_size` same-lineage tuples
    /// — the executor passes its pipeline batch size here so batches fed
    /// via [`Eddy::push_batch`] share decisions end to end.
    pub fn build_eddy_batched(
        &self,
        policy: Box<dyn RoutingPolicy>,
        batch_size: usize,
    ) -> Result<Eddy> {
        self.build_eddy_vectorized(policy, batch_size, false)
    }

    /// Like [`QueryPlan::build_eddy_batched`], additionally opting the
    /// eddy into columnar execution (`Config::columnar`): filter-only
    /// single-stream plans route whole [`tcq_common::ColumnBatch`]es
    /// through vectorized predicate kernels, and join plans build their
    /// SteM hash keys from column slices. Results are byte-identical to
    /// the row path either way.
    pub fn build_eddy_vectorized(
        &self,
        policy: Box<dyn RoutingPolicy>,
        batch_size: usize,
        columnar: bool,
    ) -> Result<Eddy> {
        let layout = self.layout();
        let mut builder = EddyBuilder::new(self.streams.iter().map(|s| s.arity).collect(), policy)
            .batch_size(batch_size)
            .columnar(columnar);
        for (i, f) in self.filters.iter().enumerate() {
            builder = builder.filter(FilterOp::new(format!("filter{i}"), f.clone()));
        }
        if self.streams.len() > 1 {
            for (si, stream) in self.streams.iter().enumerate() {
                let mut specs: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
                for edge in &self.joins {
                    let (mine, other) = if layout.stream_of_column(edge.a) == Some(si) {
                        (edge.a, edge.b)
                    } else if layout.stream_of_column(edge.b) == Some(si) {
                        (edge.b, edge.a)
                    } else {
                        continue;
                    };
                    specs.push((vec![mine - stream.offset], vec![other]));
                }
                let mut op = match specs.first() {
                    Some((local, full)) => StemOp::new(
                        format!("stem.{}", stream.alias),
                        si,
                        local.clone(),
                        full.clone(),
                    ),
                    // No incident edges: cartesian SteM (empty key).
                    None => StemOp::new(format!("stem.{}", stream.alias), si, vec![], vec![]),
                };
                for (local, full) in specs.into_iter().skip(1) {
                    op = op.with_probe(local, full);
                }
                builder = builder.stem(op);
            }
        }
        Ok(builder.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{DataType, Field};
    use tcq_eddy::NaivePolicy;
    use tcq_windows::WindowKind;

    fn catalog() -> Catalog {
        let c = Catalog::new();
        c.register_stream(
            "ClosingStockPrices",
            Schema::qualified(
                "closingstockprices",
                vec![
                    Field::new("timestamp", DataType::Int),
                    Field::new("stockSymbol", DataType::Str),
                    Field::new("closingPrice", DataType::Float),
                ],
            ),
        )
        .unwrap();
        c.register_table(
            "Companies",
            Schema::qualified(
                "companies",
                vec![
                    Field::new("symbol", DataType::Str),
                    Field::new("sector", DataType::Str),
                ],
            ),
        )
        .unwrap();
        c
    }

    fn planner() -> Planner {
        Planner::new(catalog())
    }

    #[test]
    fn paper_landmark_query_plans() {
        let p = planner()
            .plan_sql(
                "SELECT closingPrice, timestamp \
                 FROM ClosingStockPrices \
                 WHERE stockSymbol = 'MSFT' AND closingPrice > 50.00 \
                 for (t = 101; t <= 1100; t++) { \
                   WindowIs(ClosingStockPrices, 101, t); \
                 }",
            )
            .unwrap();
        assert_eq!(p.streams.len(), 1);
        assert!(p.streams[0].windowed);
        assert_eq!(p.filters.len(), 2);
        assert!(p.joins.is_empty());
        assert_eq!(p.outputs.len(), 2);
        let w = p.window.as_ref().unwrap();
        assert_eq!(
            w.windows[0].kind(w.header.step, w.header.cond),
            WindowKind::Landmark
        );
    }

    #[test]
    fn join_edges_extracted() {
        let p = planner()
            .plan_sql(
                "SELECT c1.closingPrice, c2.closingPrice \
                 FROM ClosingStockPrices c1, ClosingStockPrices c2 \
                 WHERE c1.stockSymbol = 'MSFT' AND c2.stockSymbol = 'IBM' \
                   AND c2.closingPrice > c1.closingPrice \
                   AND c2.timestamp = c1.timestamp \
                 for (t = 50; t < 70; t++) { \
                   WindowIs(c1, t - 4, t); \
                   WindowIs(c2, t - 4, t); \
                 }",
            )
            .unwrap();
        assert_eq!(p.streams.len(), 2);
        assert_eq!(p.joins.len(), 1, "c2.timestamp = c1.timestamp is a join");
        assert_eq!(p.filters.len(), 3, "two symbol filters + price residual");
        // Full layout: c1 = cols 0..3, c2 = cols 3..6.
        let e = p.joins[0];
        let cols = [e.a.min(e.b), e.a.max(e.b)];
        assert_eq!(cols, [0, 3]);
    }

    #[test]
    fn same_stream_equality_is_a_filter_not_a_join() {
        let p = planner()
            .plan_sql("SELECT * FROM ClosingStockPrices WHERE timestamp = closingPrice")
            .unwrap();
        assert!(p.joins.is_empty());
        assert_eq!(p.filters.len(), 1);
    }

    #[test]
    fn star_expands_with_qualifiers_on_joins() {
        let p = planner()
            .plan_sql("SELECT * FROM ClosingStockPrices c1, Companies c2")
            .unwrap();
        assert_eq!(p.outputs.len(), 5);
        assert_eq!(p.outputs[0].name, "c1.timestamp");
        assert_eq!(p.outputs[3].name, "c2.symbol");
    }

    #[test]
    fn aggregates_validated_against_group_by() {
        let ok = planner().plan_sql(
            "SELECT stockSymbol, MAX(closingPrice) FROM ClosingStockPrices GROUP BY stockSymbol",
        );
        assert!(ok.is_ok());
        assert!(ok.unwrap().is_aggregating());
        let bad = planner().plan_sql(
            "SELECT closingPrice, MAX(closingPrice) FROM ClosingStockPrices GROUP BY stockSymbol",
        );
        assert!(bad.is_err());
        let bad2 =
            planner().plan_sql("SELECT stockSymbol FROM ClosingStockPrices GROUP BY stockSymbol");
        assert!(bad2.is_err(), "GROUP BY without aggregates");
        let bad3 = planner().plan_sql("SELECT SUM(*) FROM ClosingStockPrices");
        assert!(bad3.is_err(), "SUM(*) is invalid");
    }

    #[test]
    fn unknown_names_error() {
        assert!(matches!(
            planner().plan_sql("SELECT * FROM nosuch"),
            Err(TcqError::UnknownStream(_))
        ));
        assert!(matches!(
            planner().plan_sql("SELECT nosuch FROM ClosingStockPrices"),
            Err(TcqError::UnknownColumn { .. })
        ));
        assert!(planner()
            .plan_sql("SELECT * FROM ClosingStockPrices for (;;) { WindowIs(other, 1, 2); }")
            .is_err());
        assert!(planner()
            .plan_sql("SELECT * FROM ClosingStockPrices c, ClosingStockPrices c")
            .is_err());
    }

    #[test]
    fn snapshot_idiom_validated() {
        let ok = planner().plan_sql(
            "SELECT * FROM ClosingStockPrices for (; t == 0; t = -1) { \
             WindowIs(ClosingStockPrices, 1, 5); }",
        );
        assert!(ok.is_ok());
        let bad = planner().plan_sql(
            "SELECT * FROM ClosingStockPrices for (t = 5; t == 0; t = -1) { \
             WindowIs(ClosingStockPrices, 1, 5); }",
        );
        assert!(bad.is_err());
    }

    #[test]
    fn projection_applies() {
        let p = planner()
            .plan_sql("SELECT closingPrice, stockSymbol FROM ClosingStockPrices")
            .unwrap();
        let t = Tuple::at_seq(
            vec![Value::Int(1), Value::str("MSFT"), Value::Float(50.0)],
            1,
        );
        let out = p.project(&t).unwrap();
        assert_eq!(out.fields(), &[Value::Float(50.0), Value::str("MSFT")]);
        assert_eq!(p.output_schema().field(1).name, "stocksymbol");
    }

    #[test]
    fn end_to_end_filter_query_through_eddy() {
        let p = planner()
            .plan_sql(
                "SELECT closingPrice FROM ClosingStockPrices \
                 WHERE stockSymbol = 'MSFT' AND closingPrice > 50.0",
            )
            .unwrap();
        let mut eddy = p.build_eddy(Box::new(NaivePolicy::new(1))).unwrap();
        let mut results = Vec::new();
        for (i, (sym, price)) in [
            ("MSFT", 60.0),
            ("IBM", 70.0),
            ("MSFT", 40.0),
            ("MSFT", 90.0),
        ]
        .iter()
        .enumerate()
        {
            let t = Tuple::at_seq(
                vec![Value::Int(i as i64), Value::str(*sym), Value::Float(*price)],
                i as i64,
            );
            for full in eddy.push(0, t) {
                results.push(p.project(&full).unwrap());
            }
        }
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].field(0), &Value::Float(60.0));
        assert_eq!(results[1].field(0), &Value::Float(90.0));
    }

    #[test]
    fn end_to_end_join_query_through_eddy() {
        // Paper example 4 shape: MSFT vs IBM, same day, IBM higher.
        let p = planner()
            .plan_sql(
                "SELECT c1.closingPrice, c2.closingPrice \
                 FROM ClosingStockPrices c1, ClosingStockPrices c2 \
                 WHERE c1.stockSymbol = 'MSFT' AND c2.stockSymbol = 'IBM' \
                   AND c2.closingPrice > c1.closingPrice \
                   AND c2.timestamp = c1.timestamp",
            )
            .unwrap();
        let mut eddy = p.build_eddy(Box::new(NaivePolicy::new(7))).unwrap();
        let day = |d: i64, sym: &str, price: f64| {
            Tuple::at_seq(vec![Value::Int(d), Value::str(sym), Value::Float(price)], d)
        };
        let mut results = Vec::new();
        for d in 1..=5i64 {
            // Every day has an MSFT and an IBM quote; both sides of the
            // self-join receive every tuple.
            for t in [day(d, "MSFT", 50.0 + d as f64), day(d, "IBM", 53.0)] {
                for full in eddy.push(0, t.clone()) {
                    results.push(p.project(&full).unwrap());
                }
                for full in eddy.push(1, t) {
                    results.push(p.project(&full).unwrap());
                }
            }
        }
        // IBM (53) > MSFT (50+d) only for d in {1, 2}.
        assert_eq!(results.len(), 2);
        for r in &results {
            let msft = r.field(0).as_float().unwrap();
            let ibm = r.field(1).as_float().unwrap();
            assert!(ibm > msft);
        }
    }

    #[test]
    fn explain_describes_the_plan() {
        let p = planner()
            .plan_sql(
                "SELECT c1.closingPrice FROM ClosingStockPrices c1, ClosingStockPrices c2 \
                 WHERE c1.stockSymbol = 'MSFT' AND c2.timestamp = c1.timestamp \
                 for (t = 5; t <= 9; t++) { WindowIs(c1, t - 4, t); WindowIs(c2, t - 4, t); }",
            )
            .unwrap();
        let text = p.explain();
        assert!(text.contains("class: windowed"), "{text}");
        assert!(text.contains("join (shared SteMs)"), "{text}");
        assert!(text.contains("Sliding"), "{text}");
        let shared = planner()
            .plan_sql("SELECT closingPrice FROM ClosingStockPrices WHERE closingPrice > 1.0")
            .unwrap();
        assert!(shared.explain().contains("class: shared"));
        let tap = planner()
            .plan_sql("SELECT * FROM ClosingStockPrices")
            .unwrap();
        assert!(tap.explain().contains("class: continuous"));
    }

    #[test]
    fn cartesian_join_gets_empty_key_stem() {
        let p = planner()
            .plan_sql("SELECT * FROM ClosingStockPrices c1, Companies c2")
            .unwrap();
        assert!(p.joins.is_empty());
        let mut eddy = p.build_eddy(Box::new(NaivePolicy::new(3))).unwrap();
        let quote = Tuple::at_seq(
            vec![Value::Int(1), Value::str("MSFT"), Value::Float(50.0)],
            1,
        );
        let company = Tuple::at_seq(vec![Value::str("MSFT"), Value::str("tech")], 2);
        assert!(eddy.push(0, quote).is_empty());
        assert_eq!(eddy.push(1, company).len(), 1, "cartesian pairing");
    }
}
