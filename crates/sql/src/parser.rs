//! Recursive-descent parser for CQ-SQL.

use tcq_common::{BinOp, CmpOp, Consistency, Result, TcqError, Value};

use crate::ast::{
    AstBound, AstExpr, AstForLoop, AstLoopCond, AstLoopStep, AstWindowIs, FromItem, QueryAst,
    SelectItem,
};
use crate::lexer::{tokenize, Spanned, Tok};

/// Parse one CQ-SQL query.
pub fn parse(src: &str) -> Result<QueryAst> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos < p.tokens.len() {
        return Err(p.err("trailing input after query"));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

const AGG_FUNCS: [&str; 5] = ["COUNT", "SUM", "MIN", "MAX", "AVG"];

impl Parser {
    fn err(&self, message: impl Into<String>) -> TcqError {
        TcqError::ParseError {
            offset: self
                .tokens
                .get(self.pos)
                .or_else(|| self.tokens.last())
                .map_or(0, |s| s.offset),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume a specific token or error.
    fn expect(&mut self, tok: Tok, what: &str) -> Result<()> {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    /// Whether the next token is the keyword `kw` (case-insensitive).
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume the keyword if present.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(format!("expected {what}")))
            }
        }
    }

    fn int_literal(&mut self, what: &str) -> Result<i64> {
        // Allow a leading minus.
        let neg = self.peek() == Some(&Tok::Minus);
        if neg {
            self.pos += 1;
        }
        match self.bump() {
            Some(Tok::Int(v)) => Ok(if neg { -v } else { v }),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(format!("expected {what}")))
            }
        }
    }

    fn query(&mut self) -> Result<QueryAst> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let select = self.select_list()?;
        self.expect_keyword("FROM")?;
        let from = self.parse_from_list()?;
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let group_by = if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            let mut cols = vec![self.primary()?];
            while self.peek() == Some(&Tok::Comma) {
                self.pos += 1;
                cols.push(self.primary()?);
            }
            cols
        } else {
            Vec::new()
        };
        let order_by = if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            let mut items = vec![self.order_item()?];
            while self.peek() == Some(&Tok::Comma) {
                self.pos += 1;
                items.push(self.order_item()?);
            }
            items
        } else {
            Vec::new()
        };
        let window = if self.at_keyword("FOR") {
            Some(self.for_loop()?)
        } else {
            None
        };
        // The grammar puts ORDER BY before the for-loop; diagnose the
        // common misplacement instead of a bare "trailing input".
        if window.is_some() && self.at_keyword("ORDER") {
            return Err(self.err(
                "ORDER BY must precede the window for-loop: \
                 SELECT ... ORDER BY ... for (...) { WindowIs(...); }",
            ));
        }
        // Trailing consistency clause (after the for-loop, if any).
        let consistency = if self.eat_keyword("WITH") {
            self.expect_keyword("CONSISTENCY")?;
            let level = self.ident("consistency level")?;
            match Consistency::parse(&level) {
                Some(c) => Some(c),
                None => {
                    return Err(self.err(format!(
                        "unknown consistency level {level}: expected WATERMARK or SPECULATIVE"
                    )))
                }
            }
        } else {
            None
        };
        Ok(QueryAst {
            distinct,
            select,
            from,
            where_clause,
            group_by,
            order_by,
            window,
            consistency,
        })
    }

    /// One ORDER BY item: an output name or 1-based position, with an
    /// optional ASC/DESC.
    fn order_item(&mut self) -> Result<(AstExpr, bool)> {
        let e = self.primary()?;
        let desc = if self.eat_keyword("DESC") {
            true
        } else {
            self.eat_keyword("ASC");
            false
        };
        Ok((e, desc))
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>> {
        if self.peek() == Some(&Tok::Star) {
            self.pos += 1;
            return Ok(vec![SelectItem::Star]);
        }
        let mut items = vec![self.select_item()?];
        while self.peek() == Some(&Tok::Comma) {
            self.pos += 1;
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        // Aggregate call?
        if let Some(Tok::Ident(name)) = self.peek() {
            let is_agg = AGG_FUNCS.iter().any(|f| name.eq_ignore_ascii_case(f));
            let next_is_paren = matches!(
                self.tokens.get(self.pos + 1).map(|s| &s.tok),
                Some(Tok::LParen)
            );
            if is_agg && next_is_paren {
                let func = self.ident("aggregate name")?.to_ascii_uppercase();
                self.expect(Tok::LParen, "(")?;
                let arg = if self.peek() == Some(&Tok::Star) {
                    self.pos += 1;
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::RParen, ")")?;
                let alias = self.alias()?;
                return Ok(SelectItem::Agg { func, arg, alias });
            }
        }
        let expr = self.expr()?;
        let alias = self.alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn alias(&mut self) -> Result<Option<String>> {
        if self.eat_keyword("AS") {
            Ok(Some(self.ident("alias after AS")?))
        } else {
            Ok(None)
        }
    }

    fn parse_from_list(&mut self) -> Result<Vec<FromItem>> {
        let mut items = vec![self.parse_from_item()?];
        while self.peek() == Some(&Tok::Comma) {
            self.pos += 1;
            items.push(self.parse_from_item()?);
        }
        Ok(items)
    }

    fn parse_from_item(&mut self) -> Result<FromItem> {
        let name = self.ident("relation name")?;
        // Optional alias: a bare identifier that is not a clause keyword.
        let alias = match self.peek() {
            Some(Tok::Ident(s))
                if !["WHERE", "GROUP", "ORDER", "FOR", "AS", "WITH"]
                    .iter()
                    .any(|k| s.eq_ignore_ascii_case(k)) =>
            {
                Some(self.ident("alias")?)
            }
            _ => {
                if self.eat_keyword("AS") {
                    Some(self.ident("alias after AS")?)
                } else {
                    None
                }
            }
        };
        Ok(FromItem { name, alias })
    }

    // Expression precedence: OR < AND < NOT < cmp < add < mul < unary.
    fn expr(&mut self) -> Result<AstExpr> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("OR") {
            let rhs = self.and_expr()?;
            lhs = AstExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let mut lhs = self.not_expr()?;
        while self.eat_keyword("AND") {
            let rhs = self.not_expr()?;
            lhs = AstExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.eat_keyword("NOT") {
            Ok(AstExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<AstExpr> {
        let lhs = self.add_expr()?;
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            let e = AstExpr::IsNull(Box::new(lhs));
            return Ok(if negated {
                AstExpr::Not(Box::new(e))
            } else {
                e
            });
        }
        let op = match self.peek() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.add_expr()?;
        Ok(AstExpr::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<AstExpr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = AstExpr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<AstExpr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = AstExpr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<AstExpr> {
        if self.peek() == Some(&Tok::Minus) {
            self.pos += 1;
            return Ok(AstExpr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(AstExpr::Literal(Value::Int(v))),
            Some(Tok::Float(v)) => Ok(AstExpr::Literal(Value::Float(v))),
            Some(Tok::Str(s)) => Ok(AstExpr::Literal(Value::str(s))),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(Tok::RParen, ")")?;
                Ok(e)
            }
            Some(Tok::Ident(first)) => {
                if first.eq_ignore_ascii_case("TRUE") {
                    return Ok(AstExpr::Literal(Value::Bool(true)));
                }
                if first.eq_ignore_ascii_case("FALSE") {
                    return Ok(AstExpr::Literal(Value::Bool(false)));
                }
                if first.eq_ignore_ascii_case("NULL") {
                    return Ok(AstExpr::Literal(Value::Null));
                }
                if self.peek() == Some(&Tok::Dot) {
                    self.pos += 1;
                    let name = self.ident("column name after '.'")?;
                    Ok(AstExpr::Column {
                        qualifier: Some(first),
                        name,
                    })
                } else {
                    Ok(AstExpr::Column {
                        qualifier: None,
                        name: first,
                    })
                }
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected an expression"))
            }
        }
    }

    // for (t = init; cond; change) { WindowIs(...); ... }
    fn for_loop(&mut self) -> Result<AstForLoop> {
        self.expect_keyword("FOR")?;
        self.expect(Tok::LParen, "( after for")?;
        // Init: `t = n` or empty.
        let init = if self.peek() == Some(&Tok::Semi) {
            0
        } else {
            let v = self.ident("loop variable")?;
            if !v.eq_ignore_ascii_case("t") {
                return Err(self.err("the loop variable must be named t"));
            }
            self.expect(Tok::Eq, "= in loop init")?;
            self.int_literal("loop initial value")?
        };
        self.expect(Tok::Semi, "; after loop init")?;
        // Condition: empty | t < n | t <= n | t == n.
        let cond = if self.peek() == Some(&Tok::Semi) {
            AstLoopCond::Forever
        } else {
            let v = self.ident("loop variable in condition")?;
            if !v.eq_ignore_ascii_case("t") {
                return Err(self.err("the loop condition must test t"));
            }
            match self.bump() {
                Some(Tok::Lt) => AstLoopCond::Lt(self.int_literal("condition bound")?),
                Some(Tok::Le) => AstLoopCond::Le(self.int_literal("condition bound")?),
                Some(Tok::Eq) => AstLoopCond::EqOnce(self.int_literal("condition bound")?),
                _ => return Err(self.err("expected <, <= or == in loop condition")),
            }
        };
        self.expect(Tok::Semi, "; after loop condition")?;
        // Change: empty (defaults to t++) | t++ | t-- | t += n | t -= n | t = n.
        let step = if self.peek() == Some(&Tok::RParen) {
            AstLoopStep::Add(1)
        } else {
            let v = self.ident("loop variable in change")?;
            if !v.eq_ignore_ascii_case("t") {
                return Err(self.err("the loop change must assign t"));
            }
            match self.bump() {
                Some(Tok::PlusPlus) => AstLoopStep::Add(1),
                Some(Tok::MinusMinus) => AstLoopStep::Add(-1),
                Some(Tok::PlusEq) => AstLoopStep::Add(self.int_literal("step amount")?),
                Some(Tok::MinusEq) => AstLoopStep::Add(-self.int_literal("step amount")?),
                Some(Tok::Eq) => AstLoopStep::Set(self.int_literal("step value")?),
                _ => return Err(self.err("expected ++, --, +=, -= or = in loop change")),
            }
        };
        self.expect(Tok::RParen, ") after loop header")?;
        self.expect(Tok::LBrace, "{ before WindowIs block")?;
        let mut windows = Vec::new();
        while !matches!(self.peek(), Some(Tok::RBrace)) {
            windows.push(self.window_is()?);
        }
        self.expect(Tok::RBrace, "} after WindowIs block")?;
        if windows.is_empty() {
            return Err(self.err("a for loop needs at least one WindowIs"));
        }
        Ok(AstForLoop {
            init,
            cond,
            step,
            windows,
        })
    }

    fn window_is(&mut self) -> Result<AstWindowIs> {
        let kw = self.ident("WindowIs")?;
        if !kw.eq_ignore_ascii_case("WINDOWIS") {
            return Err(self.err("expected WindowIs"));
        }
        self.expect(Tok::LParen, "( after WindowIs")?;
        let stream = self.ident("stream name")?;
        self.expect(Tok::Comma, ", after stream name")?;
        let left = self.bound()?;
        self.expect(Tok::Comma, ", between window bounds")?;
        let right = self.bound()?;
        self.expect(Tok::RParen, ") after window bounds")?;
        self.expect(Tok::Semi, "; after WindowIs")?;
        Ok(AstWindowIs {
            stream,
            left,
            right,
        })
    }

    /// bound := [int '*'] t [('+'|'-') int] | ['-'] int ['*' t [...]]
    fn bound(&mut self) -> Result<AstBound> {
        // Leading integer (possibly negative) or `t`.
        let mut coeff = 0i64;
        let mut offset = 0i64;
        let neg = self.peek() == Some(&Tok::Minus);
        if neg {
            self.pos += 1;
        }
        match self.bump() {
            Some(Tok::Int(v)) => {
                let v = if neg { -v } else { v };
                // `v * t` or plain constant v.
                if self.peek() == Some(&Tok::Star) {
                    self.pos += 1;
                    let t = self.ident("t after *")?;
                    if !t.eq_ignore_ascii_case("t") {
                        return Err(self.err("window bounds may only reference t"));
                    }
                    coeff = v;
                } else {
                    offset = v;
                }
            }
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("t") => {
                coeff = if neg { -1 } else { 1 };
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("expected a window bound (t ± k or a constant)"));
            }
        }
        // Optional `± int` or `± t` tail (one level is enough for the
        // affine form).
        loop {
            let sign = match self.peek() {
                Some(Tok::Plus) => 1i64,
                Some(Tok::Minus) => -1i64,
                _ => break,
            };
            self.pos += 1;
            match self.bump() {
                Some(Tok::Int(v)) => offset += sign * v,
                Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("t") => coeff += sign,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected a number or t in window bound"));
                }
            }
        }
        Ok(AstBound { coeff, offset })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    #[test]
    fn paper_snapshot_query() {
        // §4.1 example 1 (with C-style loop syntax).
        let q = parse(
            "SELECT closingPrice, timestamp \
             FROM ClosingStockPrices \
             WHERE stockSymbol = 'MSFT' \
             for (; t == 0; t = -1) { \
               WindowIs(ClosingStockPrices, 1, 5); \
             }",
        )
        .unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.from[0].name, "ClosingStockPrices");
        let w = q.window.unwrap();
        assert_eq!(w.cond, AstLoopCond::EqOnce(0));
        assert_eq!(w.step, AstLoopStep::Set(-1));
        assert_eq!(
            w.windows[0].left,
            AstBound {
                coeff: 0,
                offset: 1
            }
        );
        assert_eq!(
            w.windows[0].right,
            AstBound {
                coeff: 0,
                offset: 5
            }
        );
    }

    #[test]
    fn paper_landmark_query() {
        // §4.1 example 2.
        let q = parse(
            "SELECT closingPrice, timestamp \
             FROM ClosingStockPrices \
             WHERE stockSymbol = 'MSFT' AND closingPrice > 50.00 \
             for (t = 101; t <= 1100; t++) { \
               WindowIs(ClosingStockPrices, 101, t); \
             }",
        )
        .unwrap();
        let w = q.window.unwrap();
        assert_eq!(w.init, 101);
        assert_eq!(w.cond, AstLoopCond::Le(1100));
        assert_eq!(w.step, AstLoopStep::Add(1));
        assert_eq!(
            w.windows[0].right,
            AstBound {
                coeff: 1,
                offset: 0
            }
        );
    }

    #[test]
    fn paper_sliding_join_query() {
        // §4.1 example 4: self-join with aliases and t-4 bounds.
        let q = parse(
            "SELECT c1.closingPrice, c2.closingPrice \
             FROM ClosingStockPrices c1, ClosingStockPrices c2 \
             WHERE c1.stockSymbol = 'MSFT' AND c2.stockSymbol = 'IBM' \
               AND c2.closingPrice > c1.closingPrice \
               AND c2.timestamp = c1.timestamp \
             for (t = 50; t < 70; t++) { \
               WindowIs(c1, t - 4, t); \
               WindowIs(c2, t - 4, t); \
             }",
        )
        .unwrap();
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[0].alias.as_deref(), Some("c1"));
        let w = q.window.unwrap();
        assert_eq!(w.windows.len(), 2);
        assert_eq!(
            w.windows[0].left,
            AstBound {
                coeff: 1,
                offset: -4
            }
        );
    }

    #[test]
    fn aggregates_and_group_by() {
        let q = parse(
            "SELECT stockSymbol, MAX(closingPrice) AS hi, COUNT(*) \
             FROM csp GROUP BY stockSymbol",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 1);
        match &q.select[1] {
            SelectItem::Agg { func, arg, alias } => {
                assert_eq!(func, "MAX");
                assert!(arg.is_some());
                assert_eq!(alias.as_deref(), Some("hi"));
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
        match &q.select[2] {
            SelectItem::Agg { func, arg, .. } => {
                assert_eq!(func, "COUNT");
                assert!(arg.is_none());
            }
            other => panic!("expected COUNT(*), got {other:?}"),
        }
    }

    #[test]
    fn star_select() {
        let q = parse("SELECT * FROM s").unwrap();
        assert_eq!(q.select, vec![SelectItem::Star]);
        assert!(q.window.is_none());
    }

    #[test]
    fn operator_precedence() {
        let q = parse("SELECT * FROM s WHERE a > 1 + 2 * 3 AND b = 1 OR c = 2").unwrap();
        // ((a > (1 + (2*3))) AND (b=1)) OR (c=2)
        match q.where_clause.unwrap() {
            AstExpr::Or(lhs, _) => match *lhs {
                AstExpr::And(gt, _) => match *gt {
                    AstExpr::Cmp(CmpOp::Gt, _, rhs) => match *rhs {
                        AstExpr::Arith(BinOp::Add, _, _) => {}
                        other => panic!("expected add on rhs, got {other:?}"),
                    },
                    other => panic!("expected cmp, got {other:?}"),
                },
                other => panic!("expected AND, got {other:?}"),
            },
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn is_null_and_not() {
        let q = parse("SELECT * FROM s WHERE a IS NULL AND NOT b IS NOT NULL").unwrap();
        let w = q.where_clause.unwrap();
        match w {
            AstExpr::And(l, r) => {
                assert!(matches!(*l, AstExpr::IsNull(_)));
                assert!(matches!(*r, AstExpr::Not(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn forever_loop_and_default_step() {
        let q = parse("SELECT * FROM s for (;;) { WindowIs(s, t - 9, t); }").unwrap();
        let w = q.window.unwrap();
        assert_eq!(w.cond, AstLoopCond::Forever);
        assert_eq!(w.step, AstLoopStep::Add(1));
    }

    #[test]
    fn hopping_backward_bounds() {
        let q = parse(
            "SELECT * FROM s for (t = 100; ; t -= 10) { WindowIs(s, -1 * t + 100, -1 * t + 109); }",
        )
        .unwrap();
        let w = q.window.unwrap();
        assert_eq!(w.step, AstLoopStep::Add(-10));
        assert_eq!(
            w.windows[0].left,
            AstBound {
                coeff: -1,
                offset: 100
            }
        );
        assert_eq!(
            w.windows[0].right,
            AstBound {
                coeff: -1,
                offset: 109
            }
        );
    }

    #[test]
    fn errors_are_positioned() {
        for bad in [
            "SELECT",
            "SELECT * FROM",
            "SELECT * FROM s WHERE",
            "SELECT * FROM s for (x = 1; ; ) { WindowIs(s, 1, 2); }",
            "SELECT * FROM s for (;;) { }",
            "SELECT * FROM s for (;;) { WindowIs(s, 1); }",
            "SELECT * FROM s WHERE a = 1 2",
        ] {
            assert!(
                matches!(parse(bad), Err(TcqError::ParseError { .. })),
                "{bad} should fail"
            );
        }
    }

    #[test]
    fn misplaced_order_by_gets_a_specific_error() {
        let e =
            parse("SELECT day FROM s for (t = 1; t <= 5; t++) { WindowIs(s, 1, t); } ORDER BY day")
                .unwrap_err();
        match e {
            TcqError::ParseError { message, .. } => {
                assert!(
                    message.contains("ORDER BY must precede the window for-loop"),
                    "got: {message}"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn with_consistency_clause() {
        // Default: no clause.
        assert_eq!(parse("SELECT * FROM s").unwrap().consistency, None);
        // Unwindowed and windowed positions, both levels, any case.
        let q = parse("SELECT * FROM s WITH CONSISTENCY SPECULATIVE").unwrap();
        assert_eq!(q.consistency, Some(Consistency::Speculative));
        let q = parse(
            "SELECT * FROM s for (;;) { WindowIs(s, t - 4, t); } \
             with consistency watermark",
        )
        .unwrap();
        assert_eq!(q.consistency, Some(Consistency::Watermark));
        // `WITH` never parses as a FROM alias.
        let q = parse("SELECT * FROM s WITH CONSISTENCY WATERMARK").unwrap();
        assert_eq!(q.from[0].alias, None);
        // Bad levels and truncated clauses are positioned errors.
        for bad in [
            "SELECT * FROM s WITH CONSISTENCY EVENTUAL",
            "SELECT * FROM s WITH",
            "SELECT * FROM s WITH CONSISTENCY",
        ] {
            assert!(
                matches!(parse(bad), Err(TcqError::ParseError { .. })),
                "{bad} should fail"
            );
        }
    }

    #[test]
    fn string_escapes_and_literals() {
        let q = parse("SELECT * FROM s WHERE sym = 'o''brien' AND ok = TRUE").unwrap();
        match q.where_clause.unwrap() {
            AstExpr::And(l, _) => match *l {
                AstExpr::Cmp(_, _, rhs) => {
                    assert_eq!(*rhs, AstExpr::Literal(Value::str("o'brien")));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }
}
