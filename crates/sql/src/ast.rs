//! Abstract syntax for CQ-SQL queries.

use tcq_common::{BinOp, CmpOp, Consistency, Value};

/// An unresolved scalar expression (column names, not positions).
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// `[qualifier.]name`
    Column {
        /// Optional relation qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// A constant.
    Literal(Value),
    /// Comparison.
    Cmp(CmpOp, Box<AstExpr>, Box<AstExpr>),
    /// Arithmetic.
    Arith(BinOp, Box<AstExpr>, Box<AstExpr>),
    /// Conjunction.
    And(Box<AstExpr>, Box<AstExpr>),
    /// Disjunction.
    Or(Box<AstExpr>, Box<AstExpr>),
    /// Negation.
    Not(Box<AstExpr>),
    /// `expr IS NULL` / `expr IS NOT NULL` (the latter parses as
    /// `Not(IsNull(..))`).
    IsNull(Box<AstExpr>),
    /// Unary minus.
    Neg(Box<AstExpr>),
}

/// One item in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// A scalar expression with an optional alias.
    Expr {
        /// The expression.
        expr: AstExpr,
        /// `AS alias`.
        alias: Option<String>,
    },
    /// An aggregate call `AGG(expr)` or `COUNT(*)`.
    Agg {
        /// Function name (validated by the planner).
        func: String,
        /// Argument; `None` for `COUNT(*)`.
        arg: Option<AstExpr>,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A FROM-list entry.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    /// Stream or table name.
    pub name: String,
    /// Optional alias (defaults to the name).
    pub alias: Option<String>,
}

/// The for-loop continuation condition, syntactically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstLoopCond {
    /// Empty condition: run forever.
    Forever,
    /// `t < n`
    Lt(i64),
    /// `t <= n`
    Le(i64),
    /// `t == n` (the paper's snapshot idiom).
    EqOnce(i64),
}

/// The for-loop increment, syntactically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstLoopStep {
    /// `t++` / `t += n` / `t--` / `t -= n`
    Add(i64),
    /// `t = n` (the paper's snapshot idiom uses `t = -1` to terminate).
    Set(i64),
}

/// A window bound: `coeff * t + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AstBound {
    /// Multiplier on `t` (0 for constants).
    pub coeff: i64,
    /// Constant offset.
    pub offset: i64,
}

/// A `WindowIs(stream, left, right)` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct AstWindowIs {
    /// Stream name or alias.
    pub stream: String,
    /// Left (older) bound.
    pub left: AstBound,
    /// Right (newer) bound.
    pub right: AstBound,
}

/// The whole for-loop clause.
#[derive(Debug, Clone, PartialEq)]
pub struct AstForLoop {
    /// Initial `t` (defaults to 0 when omitted).
    pub init: i64,
    /// Continuation condition.
    pub cond: AstLoopCond,
    /// Per-iteration change.
    pub step: AstLoopStep,
    /// Window declarations.
    pub windows: Vec<AstWindowIs>,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAst {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// FROM list.
    pub from: Vec<FromItem>,
    /// WHERE clause.
    pub where_clause: Option<AstExpr>,
    /// GROUP BY columns.
    pub group_by: Vec<AstExpr>,
    /// ORDER BY items: output column name (or 1-based position) and
    /// descending flag.
    pub order_by: Vec<(AstExpr, bool)>,
    /// Optional windowing clause.
    pub window: Option<AstForLoop>,
    /// `WITH CONSISTENCY WATERMARK|SPECULATIVE`; `None` defers to the
    /// engine default.
    pub consistency: Option<Consistency>,
}
