//! Plan signatures for the cross-query sharing index.
//!
//! Two signatures are derived from every physical plan:
//!
//! * the **full signature** — an FNV-1a hash of the canonical plan
//!   render. Queries that normalize to the same plan (modulo aliases)
//!   collide here; the server's `tcq$plans` stream reports it.
//! * the **core signature** — the shareable subplan identity. Queries
//!   with the same core compile into one dataflow with per-query
//!   residual predicates and projections. A core exists for
//!   single-stream, join-free plans only: the `window` kind keys on
//!   (source, window sequence, consistency) and shares the per-instant
//!   scan + grouped-filter pass; the `cacq` kind keys on the source and
//!   folds indexable predicates into the grouped-filter engine.

use tcq_common::Consistency;
use tcq_sql::QueryPlan;

/// Which shared dataflow a core signature names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// Unwindowed selection sharing through the CACQ grouped-filter
    /// engine.
    Cacq,
    /// Windowed family sharing: one scan + shared filter pass per loop
    /// instant.
    Window,
}

impl std::fmt::Display for CoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CoreKind::Cacq => "cacq",
            CoreKind::Window => "window",
        })
    }
}

/// The shareable-subplan identity of a plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CoreSignature {
    /// Shared dataflow class.
    pub kind: CoreKind,
    /// Exact-match grouping key; equal keys ⇒ one shared core.
    pub key: String,
}

/// Full + core signature of a physical plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSignature {
    /// Hash of the canonical plan render (hex).
    pub full: String,
    /// Shareable core, when the plan has one.
    pub core: Option<CoreSignature>,
}

/// 64-bit FNV-1a.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical render for the full signature: alias-independent and
/// stable across sessions (no addresses, no hash-map order).
fn canonical_render(plan: &QueryPlan) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for bs in &plan.streams {
        let _ = write!(s, "scan:{}/{}/{:?};", bs.name, bs.arity, bs.kind);
    }
    for f in &plan.filters {
        let _ = write!(s, "filter:{f};");
    }
    for j in &plan.joins {
        let _ = write!(s, "join:{}={};", j.a.min(j.b), j.a.max(j.b));
    }
    for o in &plan.outputs {
        match (&o.expr, &o.agg) {
            (Some(e), _) => {
                let _ = write!(s, "out:{}={e};", o.name);
            }
            (None, Some((k, Some(arg)))) => {
                let _ = write!(s, "out:{}={k}({arg});", o.name);
            }
            (None, Some((k, None))) => {
                let _ = write!(s, "out:{}={k}(*);", o.name);
            }
            (None, None) => {}
        }
    }
    for g in &plan.group_by {
        let _ = write!(s, "group:{g};");
    }
    if let Some(w) = &plan.window {
        let _ = write!(s, "window:{w:?};");
    }
    if plan.distinct {
        s.push_str("distinct;");
    }
    for &(p, d) in &plan.order_by {
        let _ = write!(s, "order:{p}/{d};");
    }
    if let Some(c) = plan.consistency {
        let _ = write!(s, "consistency:{c};");
    }
    s
}

/// The core (shareable-subplan) signature of `plan`, if it has one.
/// `effective_consistency` is the engine-resolved consistency level
/// (plan override or config default) — part of the window key because
/// speculative and strict members cannot share one emission protocol.
pub fn core_signature(
    plan: &QueryPlan,
    effective_consistency: Consistency,
) -> Option<CoreSignature> {
    if plan.streams.len() != 1 || !plan.joins.is_empty() {
        return None;
    }
    let src = &plan.streams[0];
    match &plan.window {
        Some(seq) => Some(CoreSignature {
            kind: CoreKind::Window,
            key: format!(
                "w|{}|{}|{:?}|{effective_consistency}",
                src.name, src.windowed, seq
            ),
        }),
        None if !plan.is_aggregating() => Some(CoreSignature {
            kind: CoreKind::Cacq,
            key: format!("s|{}", src.name),
        }),
        None => None,
    }
}

/// Compute the full signature (core is filled by the caller, which
/// knows the effective consistency level).
pub fn full_signature(plan: &QueryPlan) -> String {
    format!("{:016x}", fnv1a(canonical_render(plan).as_bytes()))
}
