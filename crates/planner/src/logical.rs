//! The typed logical plan.
//!
//! A [`LogicalPlan`] is the rewrite-friendly middle layer between the
//! binder (`tcq_sql::Planner`, which resolves names against the catalog
//! and splits the WHERE clause into boolean factors) and the physical
//! [`tcq_sql::QueryPlan`] the executor consumes. It keeps the bound
//! streams, decomposes the predicate into [`Conjunct`]s annotated with
//! their stream footprint and indexability, and records per-scan
//! pushdown / projection-pruning decisions so EXPLAIN can show where
//! each predicate runs and which columns are live.

use tcq_common::{CmpOp, Consistency, Expr, Value};
use tcq_sql::{BoundStream, JoinEdge, OutputCol, QueryPlan};
use tcq_windows::WindowSeq;

/// One boolean factor of the WHERE clause, in full-layout terms.
#[derive(Debug, Clone)]
pub struct Conjunct {
    /// The (rewritten) predicate expression.
    pub expr: Expr,
    /// Scan positions whose columns this conjunct reads (sorted).
    pub streams: Vec<usize>,
    /// `col <op> literal` decomposition when this factor is indexable
    /// by the CACQ grouped-filter engine.
    pub indexable: Option<(usize, CmpOp, Value)>,
}

/// A scan of one bound stream with planner annotations.
#[derive(Debug, Clone)]
pub struct ScanNode {
    /// The binder's stream entry (offsets define the full layout).
    pub stream: BoundStream,
    /// Indices into [`LogicalPlan::predicate`] of conjuncts pushed down
    /// to this scan (their footprint is exactly this stream).
    pub pushed: Vec<usize>,
    /// Local column indexes referenced anywhere in the query (filters,
    /// joins, outputs, grouping) — the survivors of projection pruning.
    pub live_cols: Vec<usize>,
}

/// A fully bound and (after [`crate::rules::rewrite`]) normalized
/// logical plan.
#[derive(Debug, Clone)]
pub struct LogicalPlan {
    /// Scans in FROM order.
    pub scans: Vec<ScanNode>,
    /// Non-join boolean factors in canonical order.
    pub predicate: Vec<Conjunct>,
    /// Equi-join edges (full-layout column pairs).
    pub joins: Vec<JoinEdge>,
    /// Output columns (projections and/or aggregates).
    pub outputs: Vec<OutputCol>,
    /// GROUP BY expressions, when aggregating.
    pub group_by: Vec<Expr>,
    /// The window sequence, if declared.
    pub window: Option<WindowSeq>,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// ORDER BY output positions with descending flags.
    pub order_by: Vec<(usize, bool)>,
    /// Per-query consistency override.
    pub consistency: Option<Consistency>,
}

impl LogicalPlan {
    /// Lift a bound [`QueryPlan`] into the logical layer.
    pub fn from_bound(plan: &QueryPlan) -> LogicalPlan {
        let mut lp = LogicalPlan {
            scans: plan
                .streams
                .iter()
                .map(|s| ScanNode {
                    stream: s.clone(),
                    pushed: Vec::new(),
                    live_cols: Vec::new(),
                })
                .collect(),
            predicate: Vec::new(),
            joins: plan.joins.clone(),
            outputs: plan.outputs.clone(),
            group_by: plan.group_by.clone(),
            window: plan.window.clone(),
            distinct: plan.distinct,
            order_by: plan.order_by.clone(),
            consistency: plan.consistency,
        };
        for f in &plan.filters {
            let c = lp.make_conjunct(f.clone());
            lp.predicate.push(c);
        }
        lp.annotate();
        lp
    }

    /// Build a [`Conjunct`] with footprint and indexability annotations.
    pub fn make_conjunct(&self, expr: Expr) -> Conjunct {
        let mut streams: Vec<usize> = expr
            .columns()
            .iter()
            .filter_map(|&c| self.stream_of_column(c))
            .collect();
        streams.sort_unstable();
        streams.dedup();
        let indexable = expr.as_single_column_cmp();
        Conjunct {
            expr,
            streams,
            indexable,
        }
    }

    /// Scan position owning full-layout column `col`.
    pub fn stream_of_column(&self, col: usize) -> Option<usize> {
        self.scans
            .iter()
            .position(|s| col >= s.stream.offset && col < s.stream.offset + s.stream.arity)
    }

    /// Recompute pushdown and live-column annotations from the current
    /// predicate/output lists. Called after every rewrite pass.
    pub fn annotate(&mut self) {
        for s in &mut self.scans {
            s.pushed.clear();
            s.live_cols.clear();
        }
        for (ci, c) in self.predicate.iter().enumerate() {
            if let [only] = c.streams[..] {
                self.scans[only].pushed.push(ci);
            }
        }
        // Live columns: anything read by filters, joins, outputs,
        // grouping, or the stream cursor columns used by windows (the
        // window driver reads timestamps, not data columns, so scans
        // only owe what expressions touch).
        let mut live: Vec<usize> = Vec::new();
        for c in &self.predicate {
            live.extend(c.expr.columns());
        }
        for j in &self.joins {
            live.push(j.a);
            live.push(j.b);
        }
        for o in &self.outputs {
            if let Some(e) = &o.expr {
                live.extend(e.columns());
            }
            if let Some((_, Some(arg))) = &o.agg {
                live.extend(arg.columns());
            }
        }
        for g in &self.group_by {
            live.extend(g.columns());
        }
        live.sort_unstable();
        live.dedup();
        for col in live {
            if let Some(si) = self.stream_of_column(col) {
                let local = col - self.scans[si].stream.offset;
                self.scans[si].live_cols.push(local);
            }
        }
    }

    /// Whether any output is an aggregate.
    pub fn is_aggregating(&self) -> bool {
        self.outputs.iter().any(|o| o.agg.is_some())
    }

    /// Lower back to the physical [`QueryPlan`] shape the executor
    /// consumes. The predicate list carries the canonical conjunct
    /// order; join edges are preserved from the binder (rewrites never
    /// invent or destroy equi-join factors).
    pub fn lower(&self) -> QueryPlan {
        QueryPlan {
            streams: self.scans.iter().map(|s| s.stream.clone()).collect(),
            filters: self.predicate.iter().map(|c| c.expr.clone()).collect(),
            joins: self.joins.clone(),
            outputs: self.outputs.clone(),
            group_by: self.group_by.clone(),
            window: self.window.clone(),
            distinct: self.distinct,
            order_by: self.order_by.clone(),
            consistency: self.consistency,
        }
    }

    /// Deterministic operator-tree rendering for EXPLAIN. Inner-most
    /// operators (scans) are deepest; annotations show pushdown and
    /// live columns.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut depth = 0usize;
        let line = |out: &mut String, depth: usize, s: String| {
            let _ = writeln!(out, "{:indent$}{s}", "", indent = depth * 2);
        };
        if !self.order_by.is_empty() {
            let keys: Vec<String> = self
                .order_by
                .iter()
                .map(|&(p, d)| format!("#{p}{}", if d { " desc" } else { "" }))
                .collect();
            line(&mut out, depth, format!("Sort [{}]", keys.join(", ")));
            depth += 1;
        }
        if self.distinct {
            line(&mut out, depth, "Distinct".to_string());
            depth += 1;
        }
        if self.is_aggregating() {
            let aggs: Vec<String> = self
                .outputs
                .iter()
                .map(|o| match &o.agg {
                    Some((k, Some(arg))) => format!("{}({arg}) AS {}", k, o.name),
                    Some((k, None)) => format!("{}(*) AS {}", k, o.name),
                    None => format!(
                        "{} AS {}",
                        o.expr.as_ref().map(|e| e.to_string()).unwrap_or_default(),
                        o.name
                    ),
                })
                .collect();
            let groups: Vec<String> = self.group_by.iter().map(|g| g.to_string()).collect();
            line(
                &mut out,
                depth,
                format!(
                    "Aggregate [{}] group by [{}]",
                    aggs.join(", "),
                    groups.join(", ")
                ),
            );
        } else {
            let cols: Vec<String> = self
                .outputs
                .iter()
                .map(|o| {
                    format!(
                        "{} AS {}",
                        o.expr.as_ref().map(|e| e.to_string()).unwrap_or_default(),
                        o.name
                    )
                })
                .collect();
            line(&mut out, depth, format!("Project [{}]", cols.join(", ")));
        }
        depth += 1;
        // Residual (non-pushed) conjuncts sit above the join.
        let residual: Vec<String> = self
            .predicate
            .iter()
            .filter(|c| c.streams.len() != 1)
            .map(|c| c.expr.to_string())
            .collect();
        if !residual.is_empty() {
            line(&mut out, depth, format!("Filter [{}]", residual.join(", ")));
            depth += 1;
        }
        if !self.joins.is_empty() || self.scans.len() > 1 {
            let edges: Vec<String> = self
                .joins
                .iter()
                .map(|e| format!("#{} = #{}", e.a.min(e.b), e.a.max(e.b)))
                .collect();
            line(&mut out, depth, format!("Join [{}]", edges.join(", ")));
            depth += 1;
        }
        if let Some(seq) = &self.window {
            line(
                &mut out,
                depth,
                format!(
                    "Window [for (t = {}; {:?}; t += {})]",
                    seq.header.init, seq.header.cond, seq.header.step
                ),
            );
            depth += 1;
        }
        for s in &self.scans {
            let pushed: Vec<String> = s
                .pushed
                .iter()
                .map(|&ci| self.predicate[ci].expr.to_string())
                .collect();
            let live: Vec<String> = s.live_cols.iter().map(|c| format!("#{c}")).collect();
            line(
                &mut out,
                depth,
                format!(
                    "Scan {} AS {}{} pushed=[{}] live=[{}]",
                    s.stream.name,
                    s.stream.alias,
                    if s.stream.windowed { " [windowed]" } else { "" },
                    pushed.join(", "),
                    live.join(", "),
                ),
            );
        }
        if let Some(c) = self.consistency {
            line(&mut out, 0, format!("consistency: {c}"));
        }
        out
    }
}
