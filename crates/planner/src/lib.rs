//! TelegraphCQ-rs planner: bind → logical → rewrite → lower.
//!
//! [`CqPlanner`] wraps the CQ-SQL binder (`tcq_sql::Planner`) and runs
//! every query through a typed [`LogicalPlan`], a value-safe rewrite
//! pass ([`rules::rewrite`]: constant folding, predicate
//! simplification, CNF normalization with canonical term ordering,
//! filter pushdown, projection pruning), and a lowering step back to
//! the physical [`QueryPlan`] the executor consumes. Alongside the
//! physical plan it derives [`PlanSignature`]s — the keys the server's
//! admit path uses to detect that K near-identical standing queries
//! can execute as one shared dataflow plus per-query residuals.

mod logical;
pub mod rules;
mod signature;

pub use logical::{Conjunct, LogicalPlan, ScanNode};
pub use signature::{core_signature, full_signature, CoreKind, CoreSignature, PlanSignature};

use tcq_common::{Catalog, Consistency, Result};
use tcq_sql::{QueryAst, QueryPlan};

/// A query after the full planning pipeline.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The rewritten logical plan (annotations drive EXPLAIN).
    pub logical: LogicalPlan,
    /// The lowered physical plan the executor runs.
    pub physical: QueryPlan,
    /// Rewrite rules that fired, in application order.
    pub rules: Vec<&'static str>,
    /// Full-plan signature (hex hash of the canonical render).
    pub full_signature: String,
}

impl PlannedQuery {
    /// The shareable-core signature under `effective` consistency (the
    /// engine default resolved against any per-query override).
    pub fn core_signature(&self, effective: Consistency) -> Option<CoreSignature> {
        signature::core_signature(&self.physical, effective)
    }

    /// Both signatures bundled, resolving consistency like the engine
    /// does.
    pub fn signature(&self, default_consistency: Consistency) -> PlanSignature {
        let effective = self.physical.consistency.unwrap_or(default_consistency);
        PlanSignature {
            full: self.full_signature.clone(),
            core: self.core_signature(effective),
        }
    }

    /// Deterministic logical + physical EXPLAIN rendering.
    pub fn explain(&self, default_consistency: Consistency) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "=== Logical Plan ===");
        out.push_str(&self.logical.render());
        let rules = if self.rules.is_empty() {
            "none".to_string()
        } else {
            self.rules.join(", ")
        };
        let _ = writeln!(out, "rewrites: [{rules}]");
        let _ = writeln!(out, "=== Physical Plan ===");
        out.push_str(&self.physical.explain());
        let sig = self.signature(default_consistency);
        let _ = writeln!(out, "signature: {}", sig.full);
        match &sig.core {
            Some(c) => {
                let _ = writeln!(out, "shared-core: {} {}", c.kind, c.key);
            }
            None => {
                let _ = writeln!(out, "shared-core: none");
            }
        }
        out
    }
}

/// The bind → rewrite → lower planning pipeline.
#[derive(Debug, Clone)]
pub struct CqPlanner {
    binder: tcq_sql::Planner,
}

impl CqPlanner {
    /// A planner over `catalog`.
    pub fn new(catalog: Catalog) -> CqPlanner {
        CqPlanner {
            binder: tcq_sql::Planner::new(catalog),
        }
    }

    /// Parse, bind, rewrite, and lower in one step.
    pub fn plan_sql(&self, sql: &str) -> Result<PlannedQuery> {
        Ok(Self::plan_bound(self.binder.plan_sql(sql)?))
    }

    /// Plan a parsed query.
    pub fn plan(&self, ast: &QueryAst) -> Result<PlannedQuery> {
        Ok(Self::plan_bound(self.binder.plan(ast)?))
    }

    /// Run the rewrite + lower pipeline on an already-bound plan.
    pub fn plan_bound(bound: QueryPlan) -> PlannedQuery {
        let mut logical = LogicalPlan::from_bound(&bound);
        let rules = rules::rewrite(&mut logical);
        let physical = logical.lower();
        let full_signature = signature::full_signature(&physical);
        PlannedQuery {
            logical,
            physical,
            rules,
            full_signature,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{CmpOp, DataType, Expr, Field, Schema, Tuple, Value};

    fn catalog() -> Catalog {
        let c = Catalog::new();
        c.register_stream(
            "quotes",
            Schema::qualified(
                "quotes",
                vec![
                    Field::new("day", DataType::Int),
                    Field::new("sym", DataType::Str),
                    Field::new("price", DataType::Float),
                ],
            ),
        )
        .unwrap();
        c
    }

    fn planner() -> CqPlanner {
        CqPlanner::new(catalog())
    }

    #[test]
    fn constant_folding_folds_clean_subtrees_only() {
        let p = planner()
            .plan_sql("SELECT price + (1 + 2) FROM quotes WHERE price > 2 * 3")
            .unwrap();
        assert!(p.rules.contains(&"const_fold"));
        assert_eq!(
            p.physical.filters[0],
            Expr::col(2).cmp(CmpOp::Gt, Expr::lit(6i64))
        );
        assert_eq!(
            p.physical.outputs[0].expr,
            Some(Expr::Arith(
                tcq_common::BinOp::Add,
                Box::new(Expr::col(2)),
                Box::new(Expr::lit(3i64)),
            ))
        );
        // 1/0 must keep its error (no fold).
        let p = planner()
            .plan_sql("SELECT day FROM quotes WHERE price > 1 / 0")
            .unwrap();
        assert!(matches!(&p.physical.filters[0], Expr::Cmp(..)));
        let t = Tuple::at_seq(vec![Value::Int(1), Value::str("a"), Value::Float(9.0)], 1);
        assert!(p.physical.filters[0].eval(&t).is_err());
    }

    #[test]
    fn not_pushdown_negates_comparisons() {
        let p = planner()
            .plan_sql("SELECT day FROM quotes WHERE NOT (price > 5.0)")
            .unwrap();
        assert!(p.rules.contains(&"simplify"));
        assert_eq!(
            p.physical.filters[0],
            Expr::col(2).cmp(CmpOp::Le, Expr::lit(5.0f64))
        );
        // The rewritten factor is now CACQ-indexable.
        assert!(p.physical.filters[0].as_single_column_cmp().is_some());
    }

    #[test]
    fn demorgan_splits_into_indexable_factors() {
        let p = planner()
            .plan_sql("SELECT day FROM quotes WHERE NOT (price <= 5.0 OR day < 3)")
            .unwrap();
        assert_eq!(p.physical.filters.len(), 2, "{:?}", p.physical.filters);
        assert!(p
            .physical
            .filters
            .iter()
            .all(|f| f.as_single_column_cmp().is_some()));
    }

    #[test]
    fn cnf_distributes_or_over_and() {
        let p = planner()
            .plan_sql("SELECT day FROM quotes WHERE sym = 'a' OR (sym = 'b' AND day > 3)")
            .unwrap();
        assert!(p.rules.contains(&"cnf"));
        assert_eq!(p.physical.filters.len(), 2);
        for f in &p.physical.filters {
            assert!(matches!(f, Expr::Or(..)));
        }
    }

    #[test]
    fn canonical_ordering_makes_commuted_predicates_identical() {
        let a = planner()
            .plan_sql("SELECT day FROM quotes WHERE price > 5.0 AND sym = 'x'")
            .unwrap();
        let b = planner()
            .plan_sql("SELECT day FROM quotes WHERE sym = 'x' AND 5.0 < price")
            .unwrap();
        assert_eq!(a.physical.filters, b.physical.filters);
        assert_eq!(a.full_signature, b.full_signature);
    }

    #[test]
    fn true_conjuncts_are_dropped() {
        let p = planner()
            .plan_sql("SELECT day FROM quotes WHERE 1 < 2 AND price > 5.0")
            .unwrap();
        assert_eq!(p.physical.filters.len(), 1);
    }

    #[test]
    fn core_signatures_group_families() {
        let a = planner()
            .plan_sql(
                "SELECT day FROM quotes WHERE price > 5.0 \
                 for (t = 1; t < 9; t++) { WindowIs(quotes, t - 3, t); }",
            )
            .unwrap();
        let b = planner()
            .plan_sql(
                "SELECT sym FROM quotes WHERE price > 50.0 AND sym = 'a' \
                 for (t = 1; t < 9; t++) { WindowIs(quotes, t - 3, t); }",
            )
            .unwrap();
        let (ca, cb) = (
            a.core_signature(Consistency::Watermark).unwrap(),
            b.core_signature(Consistency::Watermark).unwrap(),
        );
        assert_eq!(ca.kind, CoreKind::Window);
        assert_eq!(ca, cb, "same source+window ⇒ one family");
        // Different window ⇒ different family.
        let c = planner()
            .plan_sql(
                "SELECT day FROM quotes WHERE price > 5.0 \
                 for (t = 1; t < 9; t++) { WindowIs(quotes, t - 4, t); }",
            )
            .unwrap();
        assert_ne!(ca, c.core_signature(Consistency::Watermark).unwrap());
        // Different consistency ⇒ different family.
        assert_ne!(ca, b.core_signature(Consistency::Speculative).unwrap());
        // Unwindowed selections share the cacq core.
        let d = planner()
            .plan_sql("SELECT day FROM quotes WHERE price > 1.0")
            .unwrap();
        let cd = d.core_signature(Consistency::Watermark).unwrap();
        assert_eq!(cd.kind, CoreKind::Cacq);
    }

    #[test]
    fn explain_renders_both_layers() {
        let p = planner()
            .plan_sql(
                "SELECT day, price FROM quotes WHERE NOT (price <= 5.0) \
                 for (t = 1; t < 9; t++) { WindowIs(quotes, t - 3, t); }",
            )
            .unwrap();
        let text = p.explain(Consistency::Watermark);
        assert!(text.contains("=== Logical Plan ==="), "{text}");
        assert!(text.contains("=== Physical Plan ==="), "{text}");
        assert!(text.contains("rewrites: ["), "{text}");
        assert!(text.contains("Scan quotes"), "{text}");
        assert!(text.contains("pushed=["), "{text}");
        assert!(text.contains("shared-core: window"), "{text}");
        // Determinism.
        assert_eq!(text, p.explain(Consistency::Watermark));
    }

    #[test]
    fn rewrites_preserve_predicate_semantics() {
        // A grab-bag of predicates; rewritten filters must agree with
        // the raw bound filters on pass/drop for a sweep of tuples.
        let cases = [
            "NOT (price > 5.0)",
            "NOT (sym = 'a' AND price > 5.0)",
            "NOT NOT (price > 5.0)",
            "price > 5.0 AND 1 = 1",
            "sym = 'a' OR (day > 2 AND price < 9.0)",
            "NOT (day < 3 OR day > 7)",
            "2 + 3 < price",
            "day % 2 = 0 OR price / 0.0 > 1.0",
        ];
        let binder = tcq_sql::Planner::new(catalog());
        for sql in cases {
            let q = format!("SELECT day FROM quotes WHERE {sql}");
            let bound = binder.plan_sql(&q).unwrap();
            let planned = planner().plan_sql(&q).unwrap();
            for day in 0..10i64 {
                for (si, sym) in ["a", "b"].iter().enumerate() {
                    for price in [0.0, 5.0, 7.5, 11.0] {
                        let t = Tuple::at_seq(
                            vec![Value::Int(day), Value::str(*sym), Value::Float(price)],
                            day * 10 + si as i64,
                        );
                        let raw = bound
                            .filters
                            .iter()
                            .all(|f| f.eval_pred(&t).unwrap_or(false));
                        let rewritten = planned
                            .physical
                            .filters
                            .iter()
                            .all(|f| f.eval_pred(&t).unwrap_or(false));
                        assert_eq!(raw, rewritten, "{sql} on {t:?}");
                    }
                }
            }
        }
    }
}
