//! The rewrite rule engine.
//!
//! Every rewrite here is proven against the engine's 3VL + error
//! semantics, not plain boolean algebra. The engine evaluates *both*
//! operands of `AND`/`OR` (no short-circuit), propagates evaluation
//! errors (division by zero, overflow) upward, and drops a row when a
//! WHERE conjunct yields anything other than SQL TRUE — including an
//! error. A rewrite is applied only when it is **value-safe**: `eval`
//! returns the identical `Result<Value>` for every tuple, so it holds
//! in filters, projections, and grouping alike, at any nesting depth.
//!
//! Concretely:
//! * constant folding replaces a column-free subtree with its value
//!   only when evaluation *succeeds* — erroring constants (`1/0`) keep
//!   their error;
//! * `NOT (a <op> b)` → `a <!op> b` is unconditionally value-safe
//!   (comparisons yield Bool/NULL and evaluate both operands);
//! * De Morgan, double negation, and TRUE/FALSE absorption require the
//!   affected operand to be *boolean-shaped* (certainly Bool or NULL),
//!   because `NOT <non-boolean>` errors while `AND`/`OR` coerce a
//!   non-boolean like NULL;
//! * `x OR TRUE → TRUE` and `x AND FALSE → FALSE` are **never** applied
//!   to column-bearing `x`: if `x` errors, the original drops the row
//!   (or poisons an enclosing NOT) while the folded form would not.
//!
//! CNF distribution of OR over AND is value-safe (Kleene logic is
//! distributive and both forms evaluate the same operand set) and is
//! bounded by a factor budget so pathological predicates do not blow
//! up. Canonical term ordering — commutative operand sorting, a
//! literal-left comparison flip, and sorting the conjunct list — is
//! what makes `a AND b` and `b AND a` land on one plan signature.

use tcq_common::{CmpOp, Expr, Tuple, Value};

use crate::logical::LogicalPlan;

/// Upper bound on CNF expansion: distributing OR over AND is abandoned
/// for a conjunct when it would produce more than this many factors.
const CNF_MAX_FACTORS: usize = 16;

/// Rewrite `lp` in place; returns the names of the rules that changed
/// something, in application order (for EXPLAIN).
pub fn rewrite(lp: &mut LogicalPlan) -> Vec<&'static str> {
    let mut applied = Vec::new();
    let mark = |name: &'static str, changed: bool, applied: &mut Vec<&'static str>| {
        if changed && !applied.contains(&name) {
            applied.push(name);
        }
    };

    // 1. Constant folding — value-safe, so outputs and grouping fold too.
    let mut changed = false;
    for c in &mut lp.predicate {
        changed |= fold_in_place(&mut c.expr);
    }
    for o in &mut lp.outputs {
        if let Some(e) = &mut o.expr {
            changed |= fold_in_place(e);
        }
        if let Some((_, Some(arg))) = &mut o.agg {
            changed |= fold_in_place(arg);
        }
    }
    for g in &mut lp.group_by {
        changed |= fold_in_place(g);
    }
    mark("const_fold", changed, &mut applied);

    // 2. Simplification: NOT pushdown (De Morgan + comparison
    //    negation), double negation, TRUE/FALSE absorption.
    let mut changed = false;
    for c in &mut lp.predicate {
        changed |= simplify_in_place(&mut c.expr);
    }
    mark("simplify", changed, &mut applied);

    // 3. CNF normalization with a size guard, then re-split top-level
    //    ANDs into separate boolean factors (splitting is exact: AND
    //    evaluates both sides, so "all factors TRUE" and errors match
    //    the composite). Conjuncts folded to literal TRUE are dropped —
    //    at the top level of the WHERE clause a TRUE factor never
    //    affects the pass/drop decision.
    let mut changed = false;
    let mut split: Vec<Expr> = Vec::new();
    for c in lp.predicate.drain(..) {
        let factors = cnf_factors(&c.expr);
        changed |= factors.len() != 1 || factors[0] != c.expr;
        split.extend(factors);
    }
    let mut rebuilt = Vec::with_capacity(split.len());
    for mut e in split {
        fold_in_place(&mut e);
        simplify_in_place(&mut e);
        if matches!(e, Expr::Literal(Value::Bool(true))) {
            changed = true;
            continue;
        }
        rebuilt.push(e);
    }
    lp.predicate = rebuilt
        .into_iter()
        .map(|e| {
            let mut lpless = lp.make_conjunct(e);
            // canonical operand ordering + literal-left flip before the
            // final indexability check.
            if canonicalize_in_place(&mut lpless.expr) {
                lpless.indexable = lpless.expr.as_single_column_cmp();
            }
            lpless
        })
        .collect();
    mark("cnf", changed, &mut applied);

    // 4. Canonical term ordering across the conjunct list.
    let before: Vec<String> = lp.predicate.iter().map(|c| c.expr.to_string()).collect();
    lp.predicate.sort_by_key(|c| c.expr.to_string());
    let after: Vec<String> = lp.predicate.iter().map(|c| c.expr.to_string()).collect();
    mark("order_terms", before != after, &mut applied);

    // 5/6. Pushdown + projection pruning are annotations recomputed
    //      from the final predicate (EXPLAIN shows them; the shared
    //      family evaluator uses live columns to materialize less).
    lp.annotate();
    if lp.scans.iter().any(|s| !s.pushed.is_empty()) {
        applied.push("pushdown");
    }
    if lp.scans.iter().any(|s| s.live_cols.len() < s.stream.arity) {
        applied.push("prune_projection");
    }
    applied
}

/// Fold column-free subtrees to literals when they evaluate cleanly.
pub fn fold_in_place(e: &mut Expr) -> bool {
    let mut changed = false;
    fold_rec(e, &mut changed);
    changed
}

fn fold_rec(e: &mut Expr, changed: &mut bool) -> bool {
    // Returns whether the subtree is column-free.
    let column_free = match e {
        Expr::Column(_) => false,
        Expr::Literal(_) => true,
        Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
            let fa = fold_rec(a, changed);
            let fb = fold_rec(b, changed);
            fa && fb
        }
        Expr::Not(a) | Expr::IsNull(a) | Expr::Neg(a) => fold_rec(a, changed),
    };
    if column_free && !matches!(e, Expr::Literal(_)) {
        let empty = Tuple::at_seq(vec![], 0);
        if let Ok(v) = e.eval(&empty) {
            *e = Expr::Literal(v);
            *changed = true;
        }
    }
    column_free
}

/// Whether an expression certainly evaluates to Bool or NULL (never a
/// non-boolean value, though it may still error).
fn boolean_shaped(e: &Expr) -> bool {
    match e {
        Expr::Cmp(..) | Expr::IsNull(_) => true,
        Expr::Literal(v) => matches!(v, Value::Bool(_) | Value::Null),
        Expr::And(a, b) | Expr::Or(a, b) => boolean_shaped(a) && boolean_shaped(b),
        Expr::Not(a) => boolean_shaped(a),
        Expr::Column(_) | Expr::Arith(..) | Expr::Neg(_) => false,
    }
}

fn negated_cmp(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Lt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Le => CmpOp::Gt,
    }
}

fn take(e: &mut Expr) -> Expr {
    std::mem::replace(e, Expr::Literal(Value::Null))
}

/// Value-safe simplification to a fixpoint.
pub fn simplify_in_place(e: &mut Expr) -> bool {
    let mut changed = false;
    loop {
        let step = simplify_step(e);
        changed |= step;
        if !step {
            break;
        }
    }
    changed
}

fn simplify_step(e: &mut Expr) -> bool {
    let mut changed = match e {
        Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
            let ca = simplify_step(a);
            let cb = simplify_step(b);
            ca || cb
        }
        Expr::Not(a) | Expr::IsNull(a) | Expr::Neg(a) => simplify_step(a),
        _ => false,
    };
    let replacement = match e {
        // x AND TRUE → x when x is boolean-shaped (tvl_and(v, TRUE) = v
        // over {TRUE, FALSE, NULL}; errors in x propagate either way).
        Expr::And(a, b) => {
            if matches!(a.as_ref(), Expr::Literal(Value::Bool(true))) && boolean_shaped(b) {
                Some(take(b.as_mut()))
            } else if matches!(b.as_ref(), Expr::Literal(Value::Bool(true))) && boolean_shaped(a) {
                Some(take(a.as_mut()))
            } else {
                None
            }
        }
        // x OR FALSE → x under the same guard.
        Expr::Or(a, b) => {
            if matches!(a.as_ref(), Expr::Literal(Value::Bool(false))) && boolean_shaped(b) {
                Some(take(b.as_mut()))
            } else if matches!(b.as_ref(), Expr::Literal(Value::Bool(false))) && boolean_shaped(a) {
                Some(take(a.as_mut()))
            } else {
                None
            }
        }
        Expr::Not(inner) => match inner.as_mut() {
            // NOT NOT x → x for boolean-shaped x.
            Expr::Not(x) if boolean_shaped(x) => Some(take(x.as_mut())),
            // NOT (a <op> b) → a <!op> b — unconditionally value-safe.
            Expr::Cmp(op, a, b) => Some(Expr::Cmp(
                negated_cmp(*op),
                Box::new(take(a.as_mut())),
                Box::new(take(b.as_mut())),
            )),
            // De Morgan, guarded on boolean shape of both operands.
            Expr::And(a, b) if boolean_shaped(a) && boolean_shaped(b) => Some(Expr::Or(
                Box::new(Expr::Not(Box::new(take(a.as_mut())))),
                Box::new(Expr::Not(Box::new(take(b.as_mut())))),
            )),
            Expr::Or(a, b) if boolean_shaped(a) && boolean_shaped(b) => Some(Expr::And(
                Box::new(Expr::Not(Box::new(take(a.as_mut())))),
                Box::new(Expr::Not(Box::new(take(b.as_mut())))),
            )),
            _ => None,
        },
        _ => None,
    };
    if let Some(r) = replacement {
        *e = r;
        changed = true;
    }
    changed
}

/// Conjunctive normal form with a size guard: returns the top-level
/// AND factors after distributing OR over AND. When the expansion
/// would exceed [`CNF_MAX_FACTORS`] the original expression is kept as
/// a single factor.
pub fn cnf_factors(e: &Expr) -> Vec<Expr> {
    fn go(e: &Expr, budget: usize) -> Option<Vec<Expr>> {
        match e {
            Expr::And(a, b) => {
                let mut fa = go(a, budget)?;
                let fb = go(b, budget)?;
                fa.extend(fb);
                if fa.len() > budget {
                    return None;
                }
                Some(fa)
            }
            Expr::Or(a, b) => {
                let fa = go(a, budget)?;
                let fb = go(b, budget)?;
                if fa.len().saturating_mul(fb.len()) > budget {
                    return None;
                }
                let mut out = Vec::with_capacity(fa.len() * fb.len());
                for x in &fa {
                    for y in &fb {
                        out.push(x.clone().or(y.clone()));
                    }
                }
                Some(out)
            }
            other => Some(vec![other.clone()]),
        }
    }
    match go(e, CNF_MAX_FACTORS) {
        Some(factors) if !factors.is_empty() => factors,
        _ => vec![e.clone()],
    }
}

/// Canonical form for signatures: order commutative AND/OR operands by
/// rendered form (both operands always evaluate, and 3VL AND/OR are
/// symmetric, so this is value-safe up to which of several errors
/// surfaces — either way the row drops) and flip literal-left
/// comparisons to column-left via [`CmpOp::flipped`].
pub fn canonicalize_in_place(e: &mut Expr) -> bool {
    let mut changed = match e {
        Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
            let ca = canonicalize_in_place(a);
            let cb = canonicalize_in_place(b);
            ca || cb
        }
        Expr::Not(a) | Expr::IsNull(a) | Expr::Neg(a) => canonicalize_in_place(a),
        _ => false,
    };
    match e {
        Expr::Cmp(op, a, b) => {
            if matches!(
                (a.as_ref(), b.as_ref()),
                (Expr::Literal(_), Expr::Column(_))
            ) {
                let lit = take(a.as_mut());
                let col = take(b.as_mut());
                *e = Expr::Cmp(op.flipped(), Box::new(col), Box::new(lit));
                changed = true;
            }
        }
        Expr::And(a, b) | Expr::Or(a, b) if a.to_string() > b.to_string() => {
            std::mem::swap(a, b);
            changed = true;
        }
        _ => {}
    }
    changed
}
