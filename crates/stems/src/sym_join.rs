//! Symmetric hash join built from two SteMs (Figure 2 of the paper).
//!
//! "When an S tuple arrives, it is first sent as a build tuple to SteM_S
//! and then sent as a probe tuple to SteM_T. ST matches produced from
//! either SteM are routed to the output."
//!
//! The join is fully pipelined and non-blocking \[WA91\]: either side may
//! arrive in any interleaving, and every match is produced exactly once
//! (build-before-probe on the arriving side prevents both duplicate and
//! missed matches). Output tuples are always laid out `left ++ right`,
//! regardless of which side arrived last, so downstream column references
//! are stable. An optional residual predicate (evaluated on the
//! concatenated layout) supports non-equi conjuncts, and window bounds
//! per side provide stream eviction.

use tcq_common::{Expr, Timestamp, Tuple};

use crate::stem::SteM;

/// A two-way symmetric hash join.
#[derive(Debug)]
pub struct SymmetricHashJoin {
    left: SteM,
    right: SteM,
    /// Residual predicate over the concatenated `left ++ right` layout.
    residual: Option<Expr>,
    left_arity: usize,
}

impl SymmetricHashJoin {
    /// A join matching `left_key` columns of left tuples against
    /// `right_key` columns of right tuples. `left_arity` is the arity of
    /// left tuples (needed to lay out concatenated outputs); `residual`
    /// is an extra predicate over the concatenated output layout.
    pub fn new(
        left_key: Vec<usize>,
        right_key: Vec<usize>,
        left_arity: usize,
        residual: Option<Expr>,
    ) -> SymmetricHashJoin {
        SymmetricHashJoin {
            left: SteM::new("left", left_key),
            right: SteM::new("right", right_key),
            residual,
            left_arity,
        }
    }

    /// Number of tuples currently held on the left side.
    pub fn left_len(&self) -> usize {
        self.left.len()
    }

    /// Number of tuples currently held on the right side.
    pub fn right_len(&self) -> usize {
        self.right.len()
    }

    /// Access the left SteM (stats, diagnostics).
    pub fn left_stem(&self) -> &SteM {
        &self.left
    }

    /// Access the right SteM (stats, diagnostics).
    pub fn right_stem(&self) -> &SteM {
        &self.right
    }

    /// Process an arriving left tuple: build left, probe right. Returns
    /// concatenated `left ++ right` matches passing the residual.
    pub fn push_left(&mut self, t: Tuple) -> Vec<Tuple> {
        let probe_cols = self.left.key_cols().to_vec();
        let matches = self.right.probe_tuple(&t, &probe_cols);
        self.left.build(t.clone());
        self.filter_residual(matches.into_iter().map(|r| t.concat(&r)).collect())
    }

    /// Process an arriving right tuple: build right, probe left. Returns
    /// concatenated `left ++ right` matches passing the residual.
    pub fn push_right(&mut self, t: Tuple) -> Vec<Tuple> {
        let probe_cols = self.right.key_cols().to_vec();
        let matches = self.left.probe_tuple(&t, &probe_cols);
        self.right.build(t.clone());
        self.filter_residual(matches.into_iter().map(|l| l.concat(&t)).collect())
    }

    /// Insert a left tuple *without* probing (state installation during
    /// Flux partition movement; probing would re-emit old matches).
    pub fn build_left(&mut self, t: Tuple) {
        self.left.build(t);
    }

    /// Insert a right tuple without probing.
    pub fn build_right(&mut self, t: Tuple) {
        self.right.build(t);
    }

    /// Drain all left-side state in arrival order (partition movement).
    pub fn drain_left(&mut self) -> Vec<Tuple> {
        self.left.drain_all()
    }

    /// Drain all right-side state in arrival order.
    pub fn drain_right(&mut self) -> Vec<Tuple> {
        self.right.drain_all()
    }

    /// Evict tuples older than `bound` from both sides (sliding-window
    /// join maintenance).
    pub fn evict_before(&mut self, bound: Timestamp) -> usize {
        self.left.evict_before(bound) + self.right.evict_before(bound)
    }

    /// Evict each side against its own bound (asymmetric windows).
    pub fn evict_sides(&mut self, left_bound: Timestamp, right_bound: Timestamp) -> usize {
        self.left.evict_before(left_bound) + self.right.evict_before(right_bound)
    }

    /// Arity of left-side tuples.
    pub fn left_arity(&self) -> usize {
        self.left_arity
    }

    fn filter_residual(&self, out: Vec<Tuple>) -> Vec<Tuple> {
        match &self.residual {
            None => out,
            Some(pred) => out
                .into_iter()
                .filter(|t| pred.eval_pred(t).unwrap_or(false))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{CmpOp, Value};

    fn l(key: i64, v: &str, seq: i64) -> Tuple {
        Tuple::at_seq(vec![Value::Int(key), Value::str(v)], seq)
    }

    fn r(key: i64, w: f64, seq: i64) -> Tuple {
        Tuple::at_seq(vec![Value::Int(key), Value::Float(w)], seq)
    }

    #[test]
    fn basic_equijoin_both_arrival_orders() {
        let mut j = SymmetricHashJoin::new(vec![0], vec![0], 2, None);
        assert!(j.push_left(l(1, "a", 1)).is_empty());
        let out = j.push_right(r(1, 9.0, 2));
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].fields(),
            &[
                Value::Int(1),
                Value::str("a"),
                Value::Int(1),
                Value::Float(9.0)
            ]
        );
        // Now the reverse order for a different key.
        assert!(j.push_right(r(2, 8.0, 3)).is_empty());
        let out2 = j.push_left(l(2, "b", 4));
        assert_eq!(out2.len(), 1);
        // Layout is still left ++ right.
        assert_eq!(out2[0].field(1), &Value::str("b"));
        assert_eq!(out2[0].field(3), &Value::Float(8.0));
    }

    #[test]
    fn every_match_exactly_once_under_interleaving() {
        // 3 left and 2 right tuples with the same key => 6 matches total,
        // no matter the interleaving.
        let mut j = SymmetricHashJoin::new(vec![0], vec![0], 1, None);
        let mut total = 0;
        total += j.push_left(l(7, "x", 1)).len();
        total += j.push_right(r(7, 1.0, 2)).len();
        total += j.push_left(l(7, "y", 3)).len();
        total += j.push_left(l(7, "z", 4)).len();
        total += j.push_right(r(7, 2.0, 5)).len();
        assert_eq!(total, 6);
    }

    #[test]
    fn no_self_match_on_single_tuple() {
        let mut j = SymmetricHashJoin::new(vec![0], vec![0], 1, None);
        assert!(j.push_left(l(1, "a", 1)).is_empty());
        assert!(
            j.push_left(l(1, "b", 2)).is_empty(),
            "same side never joins itself"
        );
    }

    #[test]
    fn residual_predicate_filters() {
        // Join on key, keep only right.w > 5.0 (column 3 in concat layout).
        let residual = Expr::col(3).cmp(CmpOp::Gt, Expr::lit(5.0f64));
        let mut j = SymmetricHashJoin::new(vec![0], vec![0], 2, Some(residual));
        j.push_left(l(1, "a", 1));
        assert_eq!(j.push_right(r(1, 4.0, 2)).len(), 0);
        assert_eq!(j.push_right(r(1, 6.0, 3)).len(), 1);
    }

    #[test]
    fn eviction_prunes_matches() {
        let mut j = SymmetricHashJoin::new(vec![0], vec![0], 1, None);
        j.push_left(l(1, "old", 1));
        j.push_left(l(1, "new", 10));
        j.evict_before(Timestamp::logical(5));
        assert_eq!(j.left_len(), 1);
        let out = j.push_right(r(1, 0.0, 11));
        assert_eq!(out.len(), 1, "only the in-window left tuple matches");
    }

    #[test]
    fn asymmetric_eviction() {
        let mut j = SymmetricHashJoin::new(vec![0], vec![0], 1, None);
        j.push_left(l(1, "a", 1));
        j.push_right(r(1, 1.0, 1));
        j.evict_sides(Timestamp::logical(100), Timestamp::logical(0));
        assert_eq!(j.left_len(), 0);
        assert_eq!(j.right_len(), 1);
    }

    #[test]
    fn matches_reference_nested_loop_join() {
        // Property-style cross-check on a deterministic workload.
        let mut lefts = Vec::new();
        let mut rights = Vec::new();
        for i in 0..40i64 {
            lefts.push(l(i % 5, "L", i));
            rights.push(r(i % 7, i as f64, i + 100));
        }
        let mut j = SymmetricHashJoin::new(vec![0], vec![0], 2, None);
        let mut got = 0usize;
        // Interleave pushes.
        for i in 0..40 {
            got += j.push_left(lefts[i].clone()).len();
            got += j.push_right(rights[i].clone()).len();
        }
        let expected = lefts
            .iter()
            .flat_map(|a| rights.iter().map(move |b| (a, b)))
            .filter(|(a, b)| a.field(0).sql_eq(b.field(0)))
            .count();
        assert_eq!(got, expected);
    }
}
