//! The State Module: an indexed temporary repository of homogeneous tuples.

use std::collections::{HashMap, VecDeque};

use tcq_common::batch::{Column, ColumnData};
use tcq_common::value::KeyRepr;
use tcq_common::{ColumnBatch, Timestamp, Tuple, Value};

/// A normalized join/lookup key: one [`KeyRepr`] per key column.
///
/// Keys are equality-consistent with [`Value::sql_eq`] for non-NULL
/// values; a key containing NULL never matches anything (SQL join
/// semantics), which [`SteM::probe`] enforces explicitly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Key(Vec<KeyRepr>);

impl Key {
    /// Build a key from the values at `cols` within `tuple`.
    pub fn from_tuple(tuple: &Tuple, cols: &[usize]) -> Key {
        Key(cols.iter().map(|&c| tuple.field(c).key_bytes()).collect())
    }

    /// Build a key directly from values.
    pub fn from_values(values: &[Value]) -> Key {
        Key(values.iter().map(Value::key_bytes).collect())
    }

    /// Whether any component is NULL (such keys never join).
    pub fn has_null(&self) -> bool {
        self.0.iter().any(|k| matches!(k, KeyRepr::Null))
    }
}

/// Counters exposed for routing policies and experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SteMStats {
    /// Tuples inserted over the SteM's lifetime.
    pub builds: u64,
    /// Probe operations served.
    pub probes: u64,
    /// Matches returned across all probes.
    pub matches: u64,
    /// Tuples removed by eviction or deletion.
    pub evicted: u64,
}

/// One hash index over the stored tuples.
#[derive(Debug)]
struct IndexDef {
    cols: Vec<usize>,
    /// key → posting list of insertion ids (may contain dead ids; cleaned
    /// lazily).
    map: HashMap<Key, Vec<u64>>,
}

/// A temporary repository of homogeneous tuples with one or more hash
/// indexes.
///
/// "In order to speed processing, SteMs can be augmented with indexes."
/// A SteM always has a primary index (the join attributes given at
/// construction); secondary indexes ([`SteM::add_index`]) serve probes
/// arriving along other join edges — e.g. in a chain join `S ⋈ T ⋈ U`,
/// the T SteM is probed on `T.k1` by S-side tuples and on `T.k2` by
/// U-side tuples.
///
/// Storage is arrival-ordered; because stream timestamps are monotone per
/// source, window eviction ([`SteM::evict_before`]) pops from the front.
/// Index postings are cleaned lazily: eviction marks tuples dead by id,
/// probes skip dead ids, and postings lists are compacted when more than
/// half their entries are dead.
#[derive(Debug)]
pub struct SteM {
    name: String,
    indexes: Vec<IndexDef>,
    /// Live tuples by insertion id.
    live: HashMap<u64, Tuple>,
    /// Insertion order (ids), oldest first.
    arrival: VecDeque<u64>,
    next_id: u64,
    stats: SteMStats,
    /// Bound registry instruments; `None` until [`SteM::bind_metrics`].
    metrics: Option<StemMetrics>,
    /// Stats already pushed to the bound instruments (delta base).
    synced: SteMStats,
}

/// Registry instruments a SteM publishes through (see
/// [`SteM::bind_metrics`]).
#[derive(Debug)]
struct StemMetrics {
    builds: std::sync::Arc<tcq_metrics::Counter>,
    probes: std::sync::Arc<tcq_metrics::Counter>,
    matches: std::sync::Arc<tcq_metrics::Counter>,
    evicted: std::sync::Arc<tcq_metrics::Counter>,
    size: std::sync::Arc<tcq_metrics::Gauge>,
}

impl SteM {
    /// A SteM named `name` (for diagnostics) with a primary index on
    /// `key_cols` of the stored tuples.
    pub fn new(name: impl Into<String>, key_cols: Vec<usize>) -> SteM {
        SteM {
            name: name.into(),
            indexes: vec![IndexDef {
                cols: key_cols,
                map: HashMap::new(),
            }],
            live: HashMap::new(),
            arrival: VecDeque::new(),
            next_id: 0,
            stats: SteMStats::default(),
            metrics: None,
            synced: SteMStats::default(),
        }
    }

    /// Bind this SteM to registry instruments under
    /// `("stems", instance, ...)`. Hot paths keep updating the plain
    /// `SteMStats` struct; [`SteM::sync_metrics`] pushes deltas, so
    /// binding costs nothing per build/probe.
    pub fn bind_metrics(&mut self, registry: &tcq_metrics::Registry, instance: &str) {
        self.metrics = Some(StemMetrics {
            builds: registry.counter("stems", instance, "builds"),
            probes: registry.counter("stems", instance, "probes"),
            matches: registry.counter("stems", instance, "matches"),
            evicted: registry.counter("stems", instance, "evicted"),
            size: registry.gauge("stems", instance, "size"),
        });
        self.sync_metrics();
    }

    /// Push stat deltas accumulated since the last sync to the bound
    /// instruments (no-op when unbound). Called by owners at batch
    /// boundaries — e.g. the eddy after each `run()`.
    pub fn sync_metrics(&mut self) {
        if let Some(m) = &self.metrics {
            m.builds.add(self.stats.builds - self.synced.builds);
            m.probes.add(self.stats.probes - self.synced.probes);
            m.matches.add(self.stats.matches - self.synced.matches);
            m.evicted.add(self.stats.evicted - self.synced.evicted);
            m.size.set(self.live.len() as i64);
            self.synced = self.stats;
        }
    }

    /// Add a secondary index over `cols`. Existing tuples are backfilled.
    /// Returns the index number for use with [`SteM::probe_on`].
    pub fn add_index(&mut self, cols: Vec<usize>) -> usize {
        let mut map: HashMap<Key, Vec<u64>> = HashMap::new();
        for &id in &self.arrival {
            if let Some(t) = self.live.get(&id) {
                map.entry(Key::from_tuple(t, &cols)).or_default().push(id);
            }
        }
        self.indexes.push(IndexDef { cols, map });
        self.indexes.len() - 1
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The primary index's key columns.
    pub fn key_cols(&self) -> &[usize] {
        &self.indexes[0].cols
    }

    /// The key columns of index `idx`.
    pub fn index_cols(&self, idx: usize) -> &[usize] {
        &self.indexes[idx].cols
    }

    /// Number of indexes (including the primary).
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True iff no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> SteMStats {
        self.stats
    }

    /// Approximate heap footprint of the stored tuples, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.live.values().map(Tuple::approx_bytes).sum()
    }

    /// Insert (build) a tuple. Returns its insertion id, usable with
    /// [`SteM::delete`].
    pub fn build(&mut self, tuple: Tuple) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        for idx in &mut self.indexes {
            let key = Key::from_tuple(&tuple, &idx.cols);
            idx.map.entry(key).or_default().push(id);
        }
        self.arrival.push_back(id);
        self.live.insert(id, tuple);
        self.stats.builds += 1;
        id
    }

    /// Insert (build) a batch of tuples in order. Equivalent to calling
    /// [`SteM::build`] once per tuple, but insertion ids come from one
    /// reserved range, storage is grown once, and each index is walked
    /// once per batch. Returns the assigned id range (ascending, in
    /// batch order).
    pub fn build_batch(&mut self, tuples: &[Tuple]) -> std::ops::Range<u64> {
        let first = self.next_id;
        self.next_id += tuples.len() as u64;
        for idx in &mut self.indexes {
            for (i, t) in tuples.iter().enumerate() {
                let key = Key::from_tuple(t, &idx.cols);
                idx.map.entry(key).or_default().push(first + i as u64);
            }
        }
        self.arrival.reserve(tuples.len());
        self.live.reserve(tuples.len());
        for (i, t) in tuples.iter().enumerate() {
            let id = first + i as u64;
            self.arrival.push_back(id);
            self.live.insert(id, t.clone());
        }
        self.stats.builds += tuples.len() as u64;
        first..self.next_id
    }

    /// [`SteM::build_batch`] over a typed column batch: index keys are
    /// extracted straight from the typed key-column slices (one cell read
    /// and one [`KeyRepr`] construction per key component) instead of
    /// dereferencing every tuple's field array per index. The stored
    /// tuples are the batch's retained original rows, so probes return
    /// byte-identical results. Batches without usable columns (ragged, or
    /// a key column beyond the batch arity) fall back to the row build.
    pub fn build_batch_columnar(&mut self, batch: &ColumnBatch) -> std::ops::Range<u64> {
        let n = batch.len();
        if n == 0 {
            return self.next_id..self.next_id;
        }
        let max_key_col = self
            .indexes
            .iter()
            .flat_map(|idx| idx.cols.iter())
            .copied()
            .max();
        if batch.num_cols() == 0 || max_key_col.is_some_and(|c| c >= batch.num_cols()) {
            return self.build_batch(batch.rows());
        }
        let first = self.next_id;
        self.next_id += n as u64;
        for idx in &mut self.indexes {
            let key_cols: Vec<&Column> = idx
                .cols
                .iter()
                .map(|&c| batch.col(c).expect("key columns checked above"))
                .collect();
            for i in 0..n {
                let key = Key(key_cols.iter().map(|col| column_repr(col, i)).collect());
                idx.map.entry(key).or_default().push(first + i as u64);
            }
        }
        self.arrival.reserve(n);
        self.live.reserve(n);
        for (i, t) in batch.rows().iter().enumerate() {
            let id = first + i as u64;
            self.arrival.push_back(id);
            self.live.insert(id, t.clone());
        }
        self.stats.builds += n as u64;
        first..self.next_id
    }

    /// Search (probe) the primary index: all live tuples whose key
    /// columns equal `key`. A key containing NULL matches nothing.
    pub fn probe(&mut self, key: &Key) -> Vec<Tuple> {
        self.probe_on(0, key)
    }

    /// Probe the primary index with the key taken from `probe`'s columns
    /// `probe_cols`.
    pub fn probe_tuple(&mut self, probe: &Tuple, probe_cols: &[usize]) -> Vec<Tuple> {
        let key = Key::from_tuple(probe, probe_cols);
        self.probe(&key)
    }

    /// Search (probe) index `idx`.
    pub fn probe_on(&mut self, idx: usize, key: &Key) -> Vec<Tuple> {
        self.probe_entries_on(idx, key)
            .into_iter()
            .map(|(_, t)| t)
            .collect()
    }

    /// Like [`SteM::probe`], but returns `(insertion id, tuple)` pairs.
    /// Eddies use the insertion id to enforce exactly-once join output
    /// (a probe only matches entries built before the probing tuple's
    /// arrival).
    pub fn probe_entries(&mut self, key: &Key) -> Vec<(u64, Tuple)> {
        self.probe_entries_on(0, key)
    }

    /// Entry-level probe of index `idx`.
    pub fn probe_entries_on(&mut self, idx: usize, key: &Key) -> Vec<(u64, Tuple)> {
        let mut out = Vec::new();
        self.probe_entries_into(idx, key, &mut out);
        out
    }

    /// Entry-level probe of index `idx` into a caller-provided buffer
    /// (cleared first), so batched probe loops reuse one allocation.
    pub fn probe_entries_into(&mut self, idx: usize, key: &Key, out: &mut Vec<(u64, Tuple)>) {
        out.clear();
        self.stats.probes += 1;
        if key.has_null() {
            return;
        }
        let index = &mut self.indexes[idx];
        let Some(postings) = index.map.get_mut(key) else {
            return;
        };
        let mut dead = 0usize;
        for &id in postings.iter() {
            match self.live.get(&id) {
                Some(t) => out.push((id, t.clone())),
                None => dead += 1,
            }
        }
        if dead * 2 > postings.len() {
            let live = &self.live;
            postings.retain(|id| live.contains_key(id));
            if postings.is_empty() {
                index.map.remove(key);
            }
        }
        self.stats.matches += out.len() as u64;
    }

    /// Delete one tuple by insertion id. Returns it if it was live.
    pub fn delete(&mut self, id: u64) -> Option<Tuple> {
        let t = self.live.remove(&id);
        if t.is_some() {
            self.stats.evicted += 1;
        }
        t
    }

    /// Window eviction: drop all tuples with timestamp strictly before
    /// `bound` (same time domain). Returns the number evicted.
    ///
    /// Relies on per-source monotone timestamps, so scanning stops at the
    /// first surviving tuple.
    pub fn evict_before(&mut self, bound: Timestamp) -> usize {
        let mut n = 0;
        while let Some(&id) = self.arrival.front() {
            // Ids for already-deleted tuples are popped for free.
            match self.live.get(&id) {
                None => {
                    self.arrival.pop_front();
                }
                Some(t) => {
                    if matches!(t.ts().partial_cmp(&bound), Some(std::cmp::Ordering::Less)) {
                        self.live.remove(&id);
                        self.arrival.pop_front();
                        n += 1;
                    } else {
                        break;
                    }
                }
            }
        }
        self.stats.evicted += n as u64;
        n
    }

    /// The smallest live insertion id, if any. Lets callers that keep
    /// per-entry side tables (e.g. arrival sequence numbers) prune them
    /// after eviction.
    pub fn oldest_live_id(&mut self) -> Option<u64> {
        while let Some(&id) = self.arrival.front() {
            if self.live.contains_key(&id) {
                return Some(id);
            }
            self.arrival.pop_front();
        }
        None
    }

    /// Iterate all live tuples in arrival order.
    pub fn scan(&self) -> impl Iterator<Item = &Tuple> {
        self.arrival.iter().filter_map(move |id| self.live.get(id))
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.stats.evicted += self.live.len() as u64;
        self.live.clear();
        self.arrival.clear();
        for idx in &mut self.indexes {
            idx.map.clear();
        }
    }

    /// Drain all live tuples out of the SteM in arrival order, leaving it
    /// empty. Used by Flux state movement when a partition migrates.
    pub fn drain_all(&mut self) -> Vec<Tuple> {
        let out: Vec<Tuple> = self
            .arrival
            .iter()
            .filter_map(|id| self.live.get(id).cloned())
            .collect();
        // Drained state is moved, not evicted: bypass the eviction stat.
        self.live.clear();
        self.arrival.clear();
        for idx in &mut self.indexes {
            idx.map.clear();
        }
        out
    }
}

/// The [`Value::key_bytes`] of one cell of a typed column, read without
/// materializing a [`Value`] for the typed kinds. NULL slots (unset
/// validity bits) normalize to [`KeyRepr::Null`], exactly as
/// `Value::Null.key_bytes()` does.
fn column_repr(col: &Column, i: usize) -> KeyRepr {
    match &col.data {
        // Mixed cells are stored as the original values (including
        // NULLs), so key_bytes handles every case directly.
        ColumnData::Mixed(vs) => vs[i].key_bytes(),
        _ if !col.valid.get(i) => KeyRepr::Null,
        ColumnData::Int(xs) => KeyRepr::Int(xs[i]),
        ColumnData::Float(xs) => Value::Float(xs[i]).key_bytes(),
        ColumnData::Bool(bs) => KeyRepr::Int(bs[i] as i64),
        ColumnData::Str(ss) => KeyRepr::Str(ss[i].clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(sym: &str, price: f64, seq: i64) -> Tuple {
        Tuple::at_seq(vec![Value::str(sym), Value::Float(price)], seq)
    }

    #[test]
    fn build_then_probe_matches_by_key() {
        let mut s = SteM::new("stocks", vec![0]);
        s.build(row("MSFT", 50.0, 1));
        s.build(row("IBM", 80.0, 2));
        s.build(row("MSFT", 51.0, 3));
        let hits = s.probe(&Key::from_values(&[Value::str("MSFT")]));
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|t| t.field(0) == &Value::str("MSFT")));
        assert_eq!(s.probe(&Key::from_values(&[Value::str("AAPL")])).len(), 0);
    }

    #[test]
    fn secondary_index_probes() {
        let mut s = SteM::new("t", vec![0]);
        s.build(row("A", 1.5, 1));
        let idx = s.add_index(vec![1]);
        s.build(row("B", 1.5, 2));
        // Probe on price via the secondary index finds both (one
        // backfilled, one inserted after).
        let hits = s.probe_on(idx, &Key::from_values(&[Value::Float(1.5)]));
        assert_eq!(hits.len(), 2);
        // Primary index still works.
        assert_eq!(s.probe(&Key::from_values(&[Value::str("B")])).len(), 1);
    }

    #[test]
    fn secondary_index_respects_eviction() {
        let mut s = SteM::new("t", vec![0]);
        let idx = s.add_index(vec![1]);
        for i in 1..=6 {
            s.build(row("X", 9.0, i));
        }
        s.evict_before(Timestamp::logical(4));
        assert_eq!(
            s.probe_on(idx, &Key::from_values(&[Value::Float(9.0)]))
                .len(),
            3
        );
    }

    #[test]
    fn null_keys_never_match() {
        let mut s = SteM::new("s", vec![0]);
        s.build(Tuple::at_seq(vec![Value::Null], 1));
        assert_eq!(s.probe(&Key::from_values(&[Value::Null])).len(), 0);
    }

    #[test]
    fn numeric_key_coercion() {
        let mut s = SteM::new("s", vec![0]);
        s.build(Tuple::at_seq(vec![Value::Int(2)], 1));
        // Float 2.0 probes hit Int 2 builds (sql_eq-consistent keys).
        assert_eq!(s.probe(&Key::from_values(&[Value::Float(2.0)])).len(), 1);
    }

    #[test]
    fn delete_removes_and_reports() {
        let mut s = SteM::new("s", vec![0]);
        let id = s.build(row("A", 1.0, 1));
        assert!(s.delete(id).is_some());
        assert!(s.delete(id).is_none());
        assert_eq!(s.len(), 0);
        assert_eq!(s.probe(&Key::from_values(&[Value::str("A")])).len(), 0);
    }

    #[test]
    fn window_eviction_drops_old_tuples_only() {
        let mut s = SteM::new("s", vec![0]);
        for i in 1..=10 {
            s.build(row("A", i as f64, i));
        }
        let n = s.evict_before(Timestamp::logical(6));
        assert_eq!(n, 5);
        assert_eq!(s.len(), 5);
        let hits = s.probe(&Key::from_values(&[Value::str("A")]));
        assert!(hits.iter().all(|t| t.ts().ticks() >= 6));
    }

    #[test]
    fn eviction_across_domains_is_a_no_op() {
        let mut s = SteM::new("s", vec![0]);
        s.build(row("A", 1.0, 1));
        // Physical-domain bound cannot order against logical stamps.
        assert_eq!(s.evict_before(Timestamp::physical(100)), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn scan_is_arrival_ordered_and_skips_deleted() {
        let mut s = SteM::new("s", vec![0]);
        let a = s.build(row("A", 1.0, 1));
        s.build(row("B", 2.0, 2));
        s.build(row("C", 3.0, 3));
        s.delete(a);
        let seen: Vec<i64> = s.scan().map(|t| t.ts().ticks()).collect();
        assert_eq!(seen, vec![2, 3]);
    }

    #[test]
    fn stats_track_operations() {
        let mut s = SteM::new("s", vec![0]);
        s.build(row("A", 1.0, 1));
        s.build(row("A", 2.0, 2));
        s.probe(&Key::from_values(&[Value::str("A")]));
        s.evict_before(Timestamp::logical(2));
        let st = s.stats();
        assert_eq!(st.builds, 2);
        assert_eq!(st.probes, 1);
        assert_eq!(st.matches, 2);
        assert_eq!(st.evicted, 1);
    }

    #[test]
    fn lazy_index_compaction_keeps_probes_correct() {
        let mut s = SteM::new("s", vec![0]);
        let ids: Vec<u64> = (0..100).map(|i| s.build(row("K", i as f64, i))).collect();
        // Delete 80 of 100; postings are now mostly dead.
        for &id in &ids[..80] {
            s.delete(id);
        }
        // Repeated probes stay correct while compaction kicks in.
        for _ in 0..3 {
            assert_eq!(s.probe(&Key::from_values(&[Value::str("K")])).len(), 20);
        }
    }

    #[test]
    fn probe_entries_expose_monotone_ids() {
        let mut s = SteM::new("s", vec![0]);
        s.build(row("K", 1.0, 1));
        s.build(row("K", 2.0, 2));
        let entries = s.probe_entries(&Key::from_values(&[Value::str("K")]));
        assert_eq!(entries.len(), 2);
        assert!(entries[0].0 < entries[1].0);
    }

    #[test]
    fn oldest_live_id_advances_with_eviction() {
        let mut s = SteM::new("s", vec![0]);
        for i in 1..=5 {
            s.build(row("A", i as f64, i));
        }
        assert_eq!(s.oldest_live_id(), Some(0));
        s.evict_before(Timestamp::logical(3));
        assert_eq!(s.oldest_live_id(), Some(2));
        s.clear();
        assert_eq!(s.oldest_live_id(), None);
    }

    #[test]
    fn drain_all_returns_arrival_order_and_empties() {
        let mut s = SteM::new("s", vec![0]);
        s.build(row("A", 1.0, 1));
        s.build(row("B", 2.0, 2));
        let drained = s.drain_all();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].ts().ticks(), 1);
        assert!(s.is_empty());
        assert_eq!(s.probe(&Key::from_values(&[Value::str("A")])).len(), 0);
    }

    #[test]
    fn build_batch_matches_per_tuple_builds() {
        let mut one = SteM::new("a", vec![0]);
        let mut batch = SteM::new("b", vec![0]);
        let idx_a = one.add_index(vec![1]);
        let idx_b = batch.add_index(vec![1]);
        let rows: Vec<Tuple> = (0..20)
            .map(|i| row(if i % 2 == 0 { "X" } else { "Y" }, (i % 3) as f64, i))
            .collect();
        let ids_a: Vec<u64> = rows.iter().map(|t| one.build(t.clone())).collect();
        let range = batch.build_batch(&rows);
        assert_eq!(range, ids_a[0]..ids_a[19] + 1);
        assert_eq!(batch.len(), one.len());
        assert_eq!(batch.stats().builds, one.stats().builds);
        for key in [
            Key::from_values(&[Value::str("X")]),
            Key::from_values(&[Value::str("Y")]),
        ] {
            assert_eq!(batch.probe_entries(&key), one.probe_entries(&key));
        }
        for v in 0..3 {
            let key = Key::from_values(&[Value::Float(v as f64)]);
            assert_eq!(
                batch.probe_entries_on(idx_b, &key),
                one.probe_entries_on(idx_a, &key)
            );
        }
        // Eviction still walks arrival order.
        assert_eq!(batch.evict_before(Timestamp::logical(10)), 10);
        assert_eq!(batch.len(), 10);
    }

    #[test]
    fn build_batch_columnar_matches_row_builds() {
        let mut rowwise = SteM::new("a", vec![0]);
        let mut colwise = SteM::new("b", vec![0]);
        let idx_a = rowwise.add_index(vec![1]);
        let idx_b = colwise.add_index(vec![1]);
        // Strings, floats (integral and not), and NULL keys.
        let rows: Vec<Tuple> = (0..24)
            .map(|i| {
                let sym = if i % 5 == 0 {
                    Value::Null
                } else {
                    Value::str(if i % 2 == 0 { "X" } else { "Y" })
                };
                Tuple::at_seq(vec![sym, Value::Float(i as f64 / 2.0)], i)
            })
            .collect();
        let range_a = rowwise.build_batch(&rows);
        let range_b = colwise.build_batch_columnar(&ColumnBatch::from_tuples(rows));
        assert_eq!(range_a, range_b);
        assert_eq!(colwise.len(), rowwise.len());
        for key in [
            Key::from_values(&[Value::str("X")]),
            Key::from_values(&[Value::str("Y")]),
        ] {
            assert_eq!(colwise.probe_entries(&key), rowwise.probe_entries(&key));
        }
        for i in 0..24 {
            let key = Key::from_values(&[Value::Float(i as f64 / 2.0)]);
            assert_eq!(
                colwise.probe_entries_on(idx_b, &key),
                rowwise.probe_entries_on(idx_a, &key),
                "secondary probe {i}"
            );
        }
        // Int probes hit integral-float builds (key canonicalization).
        assert_eq!(
            colwise
                .probe_entries_on(idx_b, &Key::from_values(&[Value::Int(4)]))
                .len(),
            1
        );
    }

    #[test]
    fn build_batch_columnar_mixed_and_ragged_fall_back() {
        // Mixed-type key column: reprs still canonicalize identically.
        let mut a = SteM::new("a", vec![0]);
        let mut b = SteM::new("b", vec![0]);
        let rows: Vec<Tuple> = (0..10)
            .map(|i| {
                let v = if i % 2 == 0 {
                    Value::Int(i % 3)
                } else {
                    Value::Float((i % 3) as f64)
                };
                Tuple::at_seq(vec![v], i)
            })
            .collect();
        a.build_batch(&rows);
        b.build_batch_columnar(&ColumnBatch::from_tuples(rows));
        for v in 0..3 {
            let key = Key::from_values(&[Value::Int(v)]);
            assert_eq!(b.probe_entries(&key), a.probe_entries(&key));
        }
        // Key column beyond the batch arity routes to the row build,
        // which panics exactly like per-tuple builds would — so only the
        // in-range case is exercised here; the guard is the fallback.
        let mut c = SteM::new("c", vec![0]);
        let empty = ColumnBatch::from_tuples(Vec::new());
        assert_eq!(c.build_batch_columnar(&empty), 0..0);
    }

    #[test]
    fn probe_entries_into_reuses_buffer() {
        let mut s = SteM::new("s", vec![0]);
        s.build_batch(&(0..4).map(|i| row("K", i as f64, i)).collect::<Vec<_>>());
        let mut buf = Vec::new();
        s.probe_entries_into(0, &Key::from_values(&[Value::str("K")]), &mut buf);
        assert_eq!(buf.len(), 4);
        // Stale contents are cleared on the next probe.
        s.probe_entries_into(0, &Key::from_values(&[Value::str("missing")]), &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn multi_column_keys() {
        let mut s = SteM::new("s", vec![0, 1]);
        s.build(Tuple::at_seq(
            vec![Value::str("A"), Value::Int(1), Value::Int(10)],
            1,
        ));
        s.build(Tuple::at_seq(
            vec![Value::str("A"), Value::Int(2), Value::Int(20)],
            2,
        ));
        let hits = s.probe(&Key::from_values(&[Value::str("A"), Value::Int(2)]));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].field(2), &Value::Int(20));
    }
}
