//! # tcq-stems
//!
//! State Modules (SteMs) — §2.2 of the TelegraphCQ paper, after Raman,
//! Deshpande & Hellerstein \[RDH02\].
//!
//! "A SteM is a temporary repository of tuples, essentially corresponding
//! to half of a traditional join operator. It stores homogeneous tuples
//! ... and supports insert (build), search (probe), and optionally delete
//! (eviction) operations."
//!
//! * [`SteM`] is the repository itself, with a hash index on the join
//!   attributes, arrival-ordered storage, explicit deletion, and
//!   window-based eviction (needed for joins over unbounded streams).
//! * [`SymmetricHashJoin`] composes two SteMs into the dataflow of the
//!   paper's Figure 2: an arriving tuple is *built* into its own side's
//!   SteM and then *probed* against the other side's.
//! * [`AsyncIndexJoin`] is the paper's second SteM example: a join against
//!   a remote index, with a *rendezvous buffer* SteM holding probes
//!   pending asynchronous index responses \[GW00\] and a *cache* SteM
//!   remembering earlier expensive lookups \[HN96\].

//!
//! ## Example
//!
//! ```
//! use tcq_stems::{Key, SteM};
//! use tcq_common::{Tuple, Value};
//!
//! let mut stem = SteM::new("stocks", vec![0]);
//! stem.build(Tuple::at_seq(vec![Value::str("MSFT"), Value::Float(57.0)], 1));
//! stem.build(Tuple::at_seq(vec![Value::str("IBM"), Value::Float(90.0)], 2));
//! let hits = stem.probe(&Key::from_values(&[Value::str("MSFT")]));
//! assert_eq!(hits.len(), 1);
//! ```

pub mod async_index;
pub mod stem;
pub mod sym_join;

pub use async_index::{AsyncIndexJoin, IndexSource};
pub use stem::{Key, SteM, SteMStats};
pub use sym_join::SymmetricHashJoin;
