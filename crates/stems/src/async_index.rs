//! Asynchronous index join with rendezvous-buffer and cache SteMs.
//!
//! The paper's second SteM example (§2.2): joining stream S against a
//! remote index on T (e.g. a web lookup form wrapped by TeSS). "The best
//! way to implement index joins with remote sources is in an asynchronous
//! fashion as described in \[GW00\], requiring a SteM on S (a rendezvous
//! buffer) to hold S tuples pending matches from the index. In order to
//! minimize latency, a SteM on T should also be built, as a cache of
//! previous expensive T lookups, as in \[HN96\]."
//!
//! [`AsyncIndexJoin`] drives that dataflow against any [`IndexSource`] —
//! the trait a remote index implements. `tcq-wrappers` provides a
//! latency-simulating implementation for experiments; tests here use an
//! instant one.

use std::collections::HashMap;

use tcq_common::{Tuple, Value};

use crate::stem::{Key, SteM};

/// An asynchronous index over relation T: submit a key, poll for the
/// matching T tuples later.
pub trait IndexSource: Send {
    /// Begin an asynchronous lookup identified by `req_id`.
    fn submit(&mut self, req_id: u64, key: Vec<Value>);

    /// Completed lookups since the last poll: `(req_id, matching tuples)`.
    fn poll(&mut self) -> Vec<(u64, Vec<Tuple>)>;

    /// Number of submitted-but-unanswered lookups.
    fn pending(&self) -> usize;
}

/// Counters for the hybridization experiment (E3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AsyncIndexStats {
    /// Probes answered from the cache SteM without touching the index.
    pub cache_hits: u64,
    /// Probes that had to go to the remote index.
    pub index_lookups: u64,
    /// Probes that piggybacked on an identical in-flight lookup.
    pub piggybacked: u64,
}

/// Join of a streaming probe side S against an [`IndexSource`] on T,
/// with a rendezvous buffer (SteM on S) and a lookup cache (SteM on T).
pub struct AsyncIndexJoin {
    /// Holds S tuples awaiting index responses, keyed by probe columns.
    rendezvous: SteM,
    /// Caches T tuples from earlier lookups, keyed by index key columns.
    cache: SteM,
    /// Keys known to be fully cached (a key with zero matches is cached
    /// too — negative caching — which a bare SteM probe can't express).
    cached_keys: HashMap<Key, ()>,
    /// In-flight request id → the key it looks up.
    in_flight: HashMap<u64, (Key, Vec<Value>)>,
    /// Keys currently being looked up (for piggybacking).
    in_flight_keys: HashMap<Key, u64>,
    source: Box<dyn IndexSource>,
    probe_cols: Vec<usize>,
    next_req: u64,
    stats: AsyncIndexStats,
    caching: bool,
    /// Mirrors `source.pending()` after every submit/poll when bound via
    /// [`AsyncIndexJoin::bind_metrics`].
    pending_gauge: Option<std::sync::Arc<tcq_metrics::Gauge>>,
}

impl AsyncIndexJoin {
    /// A join probing `probe_cols` of arriving S tuples against `source`.
    /// T tuples returned by the index are keyed on `index_key_cols`.
    pub fn new(
        probe_cols: Vec<usize>,
        index_key_cols: Vec<usize>,
        source: Box<dyn IndexSource>,
    ) -> AsyncIndexJoin {
        AsyncIndexJoin {
            rendezvous: SteM::new("rendezvous", probe_cols.clone()),
            cache: SteM::new("cache", index_key_cols),
            cached_keys: HashMap::new(),
            in_flight: HashMap::new(),
            in_flight_keys: HashMap::new(),
            source,
            probe_cols,
            next_req: 0,
            stats: AsyncIndexStats::default(),
            caching: true,
            pending_gauge: None,
        }
    }

    /// Register a `pending_lookups` gauge under the `stems` metrics
    /// family and keep it in sync with the index's in-flight lookup
    /// count. Bound to a server's registry, the reading surfaces on the
    /// `tcq$operators` introspection stream.
    pub fn bind_metrics(&mut self, registry: &tcq_metrics::Registry, instance: &str) {
        let g = registry.gauge("stems", instance, "pending_lookups");
        g.set(self.source.pending() as i64);
        self.pending_gauge = Some(g);
    }

    /// Submitted-but-unanswered remote lookups.
    pub fn pending_lookups(&self) -> usize {
        self.source.pending()
    }

    fn sync_pending_gauge(&self) {
        if let Some(g) = &self.pending_gauge {
            g.set(self.source.pending() as i64);
        }
    }

    /// Disable the cache SteM (and piggybacking) — the ablation baseline
    /// for the hybrid-join experiment: every probe pays the remote
    /// round-trip.
    pub fn without_cache(mut self) -> AsyncIndexJoin {
        self.caching = false;
        self
    }

    /// Counters.
    pub fn stats(&self) -> AsyncIndexStats {
        self.stats
    }

    /// S tuples parked awaiting responses.
    pub fn parked(&self) -> usize {
        self.rendezvous.len()
    }

    /// T tuples cached.
    pub fn cached(&self) -> usize {
        self.cache.len()
    }

    /// Process an arriving S tuple. If its key is cached, matches are
    /// returned immediately; otherwise the tuple parks in the rendezvous
    /// buffer and a lookup is submitted (or piggybacks on an identical
    /// in-flight one).
    pub fn push_probe(&mut self, s: Tuple) -> Vec<Tuple> {
        let key = Key::from_tuple(&s, &self.probe_cols);
        if key.has_null() {
            return Vec::new();
        }
        if self.caching && self.cached_keys.contains_key(&key) {
            self.stats.cache_hits += 1;
            let matches = self.cache.probe(&key);
            return matches.into_iter().map(|t| s.concat(&t)).collect();
        }
        // Park in the rendezvous buffer.
        self.rendezvous.build(s.clone());
        if self.caching && self.in_flight_keys.contains_key(&key) {
            self.stats.piggybacked += 1;
            return Vec::new();
        }
        let key_vals: Vec<Value> = self
            .probe_cols
            .iter()
            .map(|&c| s.field(c).clone())
            .collect();
        let req = self.next_req;
        self.next_req += 1;
        self.in_flight.insert(req, (key.clone(), key_vals.clone()));
        self.in_flight_keys.insert(key, req);
        self.source.submit(req, key_vals);
        self.stats.index_lookups += 1;
        self.sync_pending_gauge();
        Vec::new()
    }

    /// Drain completed index lookups: cache the T tuples, wake the parked
    /// S tuples waiting on those keys, and return the concatenated
    /// `S ++ T` matches.
    pub fn poll(&mut self) -> Vec<Tuple> {
        let mut out = Vec::new();
        for (req, t_tuples) in self.source.poll() {
            let Some((key, _vals)) = self.in_flight.remove(&req) else {
                continue;
            };
            self.in_flight_keys.remove(&key);
            if self.caching {
                for t in &t_tuples {
                    self.cache.build(t.clone());
                }
                self.cached_keys.insert(key.clone(), ());
                // Wake every parked S tuple with this key.
                let waiters = self.rendezvous.probe(&key);
                for s in &waiters {
                    for t in &t_tuples {
                        out.push(s.concat(t));
                    }
                }
                // Remove the woken tuples from the rendezvous buffer:
                // probe returned clones; rebuild without this key.
                let remaining: Vec<Tuple> = self
                    .rendezvous
                    .drain_all()
                    .into_iter()
                    .filter(|s| Key::from_tuple(s, &self.probe_cols) != key)
                    .collect();
                for s in remaining {
                    self.rendezvous.build(s);
                }
            } else {
                // No sharing: this response answers exactly one parked
                // probe (the oldest with this key).
                let mut woken = false;
                let remaining: Vec<Tuple> = self
                    .rendezvous
                    .drain_all()
                    .into_iter()
                    .filter(|s| {
                        if !woken && Key::from_tuple(s, &self.probe_cols) == key {
                            for t in &t_tuples {
                                out.push(s.concat(t));
                            }
                            woken = true;
                            false
                        } else {
                            true
                        }
                    })
                    .collect();
                for s in remaining {
                    self.rendezvous.build(s);
                }
            }
        }
        self.sync_pending_gauge();
        out
    }

    /// Whether any work is still outstanding.
    pub fn idle(&self) -> bool {
        self.in_flight.is_empty() && self.source.pending() == 0
    }
}

/// An [`IndexSource`] answering from an in-memory table after a fixed
/// number of `poll` calls (simulated latency measured in polls).
/// Deterministic; used by tests and by E3's bench via `tcq-wrappers`.
pub struct TableIndex {
    rows: Vec<Tuple>,
    key_cols: Vec<usize>,
    latency_polls: u32,
    queue: Vec<(u64, Vec<Value>, u32)>,
}

impl TableIndex {
    /// An index over `rows`, keyed on `key_cols`, answering each lookup
    /// after `latency_polls` calls to `poll`.
    pub fn new(rows: Vec<Tuple>, key_cols: Vec<usize>, latency_polls: u32) -> TableIndex {
        TableIndex {
            rows,
            key_cols,
            latency_polls,
            queue: Vec::new(),
        }
    }
}

impl IndexSource for TableIndex {
    fn submit(&mut self, req_id: u64, key: Vec<Value>) {
        self.queue.push((req_id, key, 0));
    }

    fn poll(&mut self) -> Vec<(u64, Vec<Tuple>)> {
        let mut ready = Vec::new();
        let latency = self.latency_polls;
        let rows = &self.rows;
        let key_cols = &self.key_cols;
        self.queue.retain_mut(|(req, key, age)| {
            *age += 1;
            if *age > latency {
                let matches: Vec<Tuple> = rows
                    .iter()
                    .filter(|t| {
                        key_cols
                            .iter()
                            .zip(key.iter())
                            .all(|(&c, v)| t.field(c).sql_eq(v))
                    })
                    .cloned()
                    .collect();
                ready.push((*req, matches));
                false
            } else {
                true
            }
        });
        ready
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t_row(key: i64, v: &str, seq: i64) -> Tuple {
        Tuple::at_seq(vec![Value::Int(key), Value::str(v)], seq)
    }

    fn make_join(latency: u32) -> AsyncIndexJoin {
        let table = vec![t_row(1, "one", 0), t_row(2, "two", 0), t_row(1, "uno", 0)];
        AsyncIndexJoin::new(
            vec![0],
            vec![0],
            Box::new(TableIndex::new(table, vec![0], latency)),
        )
    }

    #[test]
    fn first_probe_parks_then_poll_delivers() {
        let mut j = make_join(0);
        let s = Tuple::at_seq(vec![Value::Int(1), Value::str("probe")], 1);
        assert!(j.push_probe(s).is_empty());
        assert_eq!(j.parked(), 1);
        let out = j.poll();
        assert_eq!(out.len(), 2, "key 1 has two T matches");
        assert_eq!(j.parked(), 0);
        assert!(j.idle());
    }

    #[test]
    fn second_probe_hits_cache() {
        let mut j = make_join(0);
        j.push_probe(Tuple::at_seq(vec![Value::Int(2)], 1));
        j.poll();
        let out = j.push_probe(Tuple::at_seq(vec![Value::Int(2)], 2));
        assert_eq!(out.len(), 1, "cache answers immediately");
        assert_eq!(j.stats().cache_hits, 1);
        assert_eq!(j.stats().index_lookups, 1);
    }

    #[test]
    fn negative_lookups_are_cached_too() {
        let mut j = make_join(0);
        j.push_probe(Tuple::at_seq(vec![Value::Int(99)], 1));
        assert!(j.poll().is_empty());
        // Second probe of a missing key: cache hit, zero matches, no
        // index traffic.
        assert!(j
            .push_probe(Tuple::at_seq(vec![Value::Int(99)], 2))
            .is_empty());
        assert_eq!(j.stats().index_lookups, 1);
        assert_eq!(j.stats().cache_hits, 1);
    }

    #[test]
    fn identical_inflight_keys_piggyback() {
        let mut j = make_join(5);
        j.push_probe(Tuple::at_seq(vec![Value::Int(1)], 1));
        j.push_probe(Tuple::at_seq(vec![Value::Int(1)], 2));
        assert_eq!(j.stats().index_lookups, 1);
        assert_eq!(j.stats().piggybacked, 1);
        // Drive polls until the response lands; both waiters wake.
        let mut out = Vec::new();
        for _ in 0..10 {
            out.extend(j.poll());
        }
        assert_eq!(out.len(), 4, "2 waiters x 2 matches");
    }

    #[test]
    fn latency_delays_delivery() {
        let mut j = make_join(3);
        j.push_probe(Tuple::at_seq(vec![Value::Int(2)], 1));
        assert!(j.poll().is_empty());
        assert!(j.poll().is_empty());
        assert!(j.poll().is_empty());
        assert_eq!(j.poll().len(), 1);
    }

    #[test]
    fn null_probe_keys_do_nothing() {
        let mut j = make_join(0);
        assert!(j.push_probe(Tuple::at_seq(vec![Value::Null], 1)).is_empty());
        assert_eq!(j.parked(), 0);
        assert_eq!(j.stats().index_lookups, 0);
    }

    #[test]
    fn pending_gauge_tracks_inflight_lookups() {
        let reg = tcq_metrics::Registry::new();
        let mut j = make_join(2);
        j.bind_metrics(&reg, "join0");
        assert_eq!(
            reg.snapshot().value("stems", "join0", "pending_lookups"),
            Some(0)
        );
        j.push_probe(Tuple::at_seq(vec![Value::Int(1)], 1));
        j.push_probe(Tuple::at_seq(vec![Value::Int(2)], 2));
        assert_eq!(
            reg.snapshot().value("stems", "join0", "pending_lookups"),
            Some(2)
        );
        assert_eq!(j.pending_lookups(), 2);
        for _ in 0..4 {
            j.poll();
        }
        assert_eq!(
            reg.snapshot().value("stems", "join0", "pending_lookups"),
            Some(0)
        );
        assert_eq!(j.pending_lookups(), 0);
    }

    #[test]
    fn unrelated_waiters_stay_parked() {
        let mut j = make_join(1);
        j.push_probe(Tuple::at_seq(vec![Value::Int(1)], 1));
        j.poll(); // ages key-1 lookup to 1 (needs >1)
        j.push_probe(Tuple::at_seq(vec![Value::Int(2)], 2));
        let out = j.poll(); // key-1 completes; key-2 still pending
        assert_eq!(out.len(), 2);
        assert_eq!(j.parked(), 1, "key-2 probe still waiting");
        let out2 = j.poll();
        assert_eq!(out2.len(), 1);
        assert_eq!(j.parked(), 0);
    }
}
