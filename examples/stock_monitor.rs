//! The paper's §4.1 window-semantics examples, run verbatim-in-spirit
//! against a live `ClosingStockPrices` feed.
//!
//! Demonstrates every window kind the for-loop construct expresses:
//! snapshot, landmark, sliding, and hopping — plus a sliding-window
//! self-join (example 4).
//!
//! ```sh
//! cargo run --example stock_monitor
//! ```

use tcq::{Config, QueryHandle, Server};
use tcq_common::{DataType, Field, Schema};
use tcq_wrappers::StockTicker;

fn print_sets(title: &str, handle: &QueryHandle, limit: usize) {
    println!("\n== {title} ==");
    for rs in handle.drain().into_iter().take(limit) {
        let tag = rs
            .window_t
            .map(|t| format!("t={t:>4}"))
            .unwrap_or_else(|| "live  ".into());
        let preview: Vec<String> = rs.rows.iter().take(4).map(|r| format!("[{r}]")).collect();
        println!(
            "  {tag}  {:>3} rows  {}{}",
            rs.rows.len(),
            preview.join(" "),
            if rs.rows.len() > 4 { " …" } else { "" }
        );
    }
}

fn main() {
    let server = Server::start(Config::default()).expect("server starts");
    server
        .register_stream(
            "ClosingStockPrices",
            Schema::qualified(
                "closingstockprices",
                vec![
                    Field::new("timestamp", DataType::Int),
                    Field::new("stockSymbol", DataType::Str),
                    Field::new("closingPrice", DataType::Float),
                ],
            ),
        )
        .expect("stream registers");

    // Example 1 — snapshot: "closing prices for MSFT on the first five
    // days of trading".
    let snapshot = server
        .submit(
            "SELECT closingPrice, timestamp FROM ClosingStockPrices \
             WHERE stockSymbol = 'MSFT' \
             for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 5); }",
        )
        .expect("example 1 plans");

    // Example 2 — landmark: "days after day 100 on which MSFT closed
    // above $50" (shortened horizon: 40 days).
    let landmark = server
        .submit(
            "SELECT closingPrice, timestamp FROM ClosingStockPrices \
             WHERE stockSymbol = 'MSFT' AND closingPrice > 50.00 \
             for (t = 101; t <= 140; t++) { WindowIs(ClosingStockPrices, 101, t); }",
        )
        .expect("example 2 plans");

    // Example 3 — sliding: 5-day maximum.
    let sliding = server
        .submit(
            "SELECT MAX(closingPrice) AS hi FROM ClosingStockPrices \
             WHERE stockSymbol = 'MSFT' \
             for (t = 120; t <= 140; t++) { WindowIs(ClosingStockPrices, t - 4, t); }",
        )
        .expect("example 3 plans");

    // Example 4 — sliding-window self-join: days when IBM beat MSFT.
    let join = server
        .submit(
            "SELECT c1.timestamp, c1.closingPrice, c2.closingPrice \
             FROM ClosingStockPrices c1, ClosingStockPrices c2 \
             WHERE c1.stockSymbol = 'MSFT' AND c2.stockSymbol = 'IBM' \
               AND c2.closingPrice > c1.closingPrice \
               AND c2.timestamp = c1.timestamp \
             for (t = 130; t < 140; t++) { \
               WindowIs(c1, t - 4, t); WindowIs(c2, t - 4, t); }",
        )
        .expect("example 4 plans");

    // Hopping window — every 10 days, the count of the last 3 days.
    let hopping = server
        .submit(
            "SELECT COUNT(*) AS n FROM ClosingStockPrices \
             for (t = 110; t <= 140; t += 10) { WindowIs(ClosingStockPrices, t - 2, t); }",
        )
        .expect("hopping plans");

    // Drive 140 trading days through the Wrapper from the synthetic
    // ticker; the Wrapper punctuates when the source ends.
    server
        .attach_source(
            "ClosingStockPrices",
            Box::new(StockTicker::with_symbols(
                7,
                vec!["MSFT", "IBM", "ORCL"],
                Some(140),
            )),
        )
        .expect("source attaches");
    assert!(server.drain_sources(std::time::Duration::from_secs(30)));

    print_sets("Example 1: snapshot (first five days)", &snapshot, 5);
    print_sets(
        "Example 2: landmark (last 5 instants shown)",
        &landmark,
        usize::MAX,
    );
    print_sets("Example 3: sliding 5-day MAX", &sliding, usize::MAX);
    print_sets(
        "Example 4: sliding self-join (IBM > MSFT)",
        &join,
        usize::MAX,
    );
    print_sets("Hopping: 3-day count every 10 days", &hopping, usize::MAX);

    server.shutdown();
}
