//! Figure 1's less-travelled query modules on a live link-state stream:
//! `TransitiveClosure` (incremental reachability), `Juggle` (online
//! reordering by user interest, [RRH99]) and `DupElim`.
//!
//! Scenario: a network monitor ingests observed links `(src, dst)` and
//! maintains which hosts can reach which; newly derived reachability
//! pairs are deduplicated and juggled so pairs involving a watched host
//! reach the operator first.
//!
//! ```sh
//! cargo run --example reachability
//! ```

use tcq_common::{Tuple, Value};
use tcq_eddy::{DupElim, Juggle, TransitiveClosure};
use tcq_wrappers::{PacketGen, Source};

const WATCHED_HOST: i64 = 0; // the Zipf-hottest destination

fn main() {
    let mut closure = TransitiveClosure::new(0, 1);
    let mut distinct = DupElim::new();
    // Interest function: pairs touching the watched host first.
    let mut juggle = Juggle::new(32, |t: &Tuple| {
        let src = t.field(0).as_int().unwrap_or(-1);
        let dst = t.field(1).as_int().unwrap_or(-1);
        if src == WATCHED_HOST || dst == WATCHED_HOST {
            1
        } else {
            0
        }
    });

    // Links: reuse the packet generator's (src, dst) columns, folded
    // into a small host space so the closure grows interestingly.
    let mut gen = PacketGen::new(17, 64, 0.8);
    let mut emitted = Vec::new();
    for pkt in gen.poll(600) {
        let link = Tuple::new(
            vec![
                Value::Int(pkt.field(0).as_int().unwrap() % 24),
                pkt.field(1).clone(),
            ],
            pkt.ts(),
        );
        for pair in closure.push(&link) {
            // New reachability facts → dedup (closure already emits each
            // once, but links repeat after windows clear) → juggle.
            if let Some(fresh) = distinct.push(pair) {
                emitted.extend(juggle.push(fresh));
            }
        }
    }
    emitted.extend(juggle.drain());

    let watched: Vec<&Tuple> = emitted
        .iter()
        .filter(|t| {
            t.field(0).as_int() == Some(WATCHED_HOST) || t.field(1).as_int() == Some(WATCHED_HOST)
        })
        .collect();
    println!(
        "derived {} reachability pairs ({} involve watched host {})",
        emitted.len(),
        watched.len(),
        WATCHED_HOST
    );
    println!(
        "juggle surfaced {} pairs ahead of arrival order; dupelim suppressed {}",
        juggle.reordered(),
        distinct.suppressed()
    );
    // The watched host's pairs cluster early in the emission order.
    let first_quarter = &emitted[..emitted.len() / 4];
    let early_watched = first_quarter
        .iter()
        .filter(|t| {
            t.field(0).as_int() == Some(WATCHED_HOST) || t.field(1).as_int() == Some(WATCHED_HOST)
        })
        .count();
    println!(
        "first quarter of emissions contains {early_watched}/{} watched pairs",
        watched.len()
    );
    println!("sample derived pairs:");
    for t in emitted.iter().take(8) {
        println!("  {} can reach {}", t.field(0), t.field(1));
    }
}
