//! Shared continuous-query processing over a network-packet stream —
//! the CACQ scenario (§3.1): hundreds of standing filter queries share
//! one pass over the data via grouped filters, and clients come and go
//! while packets flow.
//!
//! ```sh
//! cargo run --example network_monitor
//! ```

use tcq::{Config, Server};
use tcq_common::{DataType, Field, Schema};
use tcq_wrappers::{PacketGen, Source};

fn main() {
    let server = Server::start(Config::default()).expect("server starts");
    server
        .register_stream(
            "Packets",
            Schema::qualified(
                "packets",
                vec![
                    Field::new("src", DataType::Int),
                    Field::new("dst", DataType::Int),
                    Field::new("port", DataType::Int),
                    Field::new("bytes", DataType::Int),
                ],
            ),
        )
        .expect("stream registers");

    // 200 standing queries from different "analysts": port watchers and
    // large-flow detectors with varying thresholds. All of them share
    // grouped filters inside one execution object.
    let mut handles = Vec::new();
    for port in [22, 53, 80, 443, 8080] {
        handles.push((
            format!("port {port}"),
            server
                .submit(&format!(
                    "SELECT src, dst, bytes FROM Packets WHERE port = {port}"
                ))
                .expect("port query plans"),
        ));
    }
    for i in 0..195 {
        let threshold = 600 + i * 4;
        handles.push((
            format!("flows > {threshold}B"),
            server
                .submit(&format!(
                    "SELECT src, dst FROM Packets WHERE bytes > {threshold}"
                ))
                .expect("threshold query plans"),
        ));
    }
    println!("{} standing queries registered", handles.len());

    // Stream 50k packets through in two phases, dropping half the
    // queries mid-stream (on-the-fly query removal).
    let mut gen = PacketGen::new(11, 1 << 12, 1.1);
    let mut feed = |n: usize| {
        for t in gen.poll(n) {
            server
                .push_at("Packets", t.fields().to_vec(), t.ts().ticks())
                .expect("push");
        }
    };
    feed(25_000);
    server.sync();
    for (_, h) in handles.iter().skip(100) {
        server.stop_query(h.id).expect("stop");
    }
    println!("dropped 100 queries mid-stream; continuing...");
    feed(25_000);
    server.sync();

    // Summarize a few representative queries.
    println!("\n{:<18} {:>10}", "query", "matches");
    for (name, h) in handles.iter().take(8) {
        let n: usize = h.drain().iter().map(|r| r.rows.len()).sum();
        println!("{name:<18} {n:>10}");
    }
    let survivors: usize = handles
        .iter()
        .take(100)
        .map(|(_, h)| h.drain().iter().map(|r| r.rows.len()).sum::<usize>())
        .sum();
    println!("\nremaining 100 queries matched {survivors} packets total");

    server.shutdown();
}
