//! Quickstart: start a TelegraphCQ server, register a stream, run one
//! continuous query and one windowed query, and read results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tcq::{Config, Server};
use tcq_common::{DataType, Field, Schema, Value};

fn main() {
    // 1. Start the server: FrontEnd + Executor threads + Wrapper thread.
    let server = Server::start(Config::default()).expect("server starts");

    // 2. Register the paper's running-example stream.
    server
        .register_stream(
            "ClosingStockPrices",
            Schema::qualified(
                "closingstockprices",
                vec![
                    Field::new("timestamp", DataType::Int),
                    Field::new("stockSymbol", DataType::Str),
                    Field::new("closingPrice", DataType::Float),
                ],
            ),
        )
        .expect("stream registers");

    // 3. A continuous (unwindowed) filter query: results stream out as
    //    matching tuples arrive.
    let alerts = server
        .submit(
            "SELECT timestamp, closingPrice FROM ClosingStockPrices \
             WHERE stockSymbol = 'MSFT' AND closingPrice > 55.0",
        )
        .expect("query plans");

    // 4. A windowed aggregate: one result set per sliding-window instant.
    let weekly_max = server
        .submit(
            "SELECT MAX(closingPrice) AS hi, COUNT(*) AS n \
             FROM ClosingStockPrices \
             for (t = 5; t <= 10; t++) { WindowIs(ClosingStockPrices, t - 4, t); }",
        )
        .expect("windowed query plans");

    // 5. Feed ten trading days of data.
    for day in 1..=10i64 {
        for (sym, price) in [("MSFT", 50.0 + day as f64), ("IBM", 91.5 - day as f64)] {
            server
                .push_at(
                    "ClosingStockPrices",
                    vec![Value::Int(day), Value::str(sym), Value::Float(price)],
                    day,
                )
                .expect("push succeeds");
        }
    }
    server
        .punctuate("ClosingStockPrices", 10)
        .expect("punctuate");
    server.sync();

    // 6. Read the streamed alerts.
    println!("== MSFT > $55 alerts ==");
    for rs in alerts.drain() {
        for row in rs.rows {
            println!("  day {:>2}  closed at ${}", row.field(0), row.field(1));
        }
    }

    // 7. Read the windowed answer sequence ("a sequence of sets, each
    //    set associated with an instant in time").
    println!("== 5-day MAX window ==");
    for rs in weekly_max.drain() {
        let row = &rs.rows[0];
        println!(
            "  window ending day {:>2}: max ${}  over {} quotes",
            rs.window_t.unwrap(),
            row.field(0),
            row.field(1)
        );
    }

    server.shutdown();
    println!("done.");
}
