//! Flux (§2.4): a partitioned group-by over a simulated shared-nothing
//! cluster, with online repartitioning under skew and process-pair
//! failover under machine failure.
//!
//! ```sh
//! cargo run --example flux_cluster
//! ```

use tcq_flux::{FluxCluster, GroupCount};
use tcq_wrappers::{PacketGen, Source};

fn total(c: &FluxCluster) -> i64 {
    c.snapshot()
        .iter()
        .map(|t| t.field(t.arity() - 1).as_int().unwrap())
        .sum()
}

fn print_loads(tag: &str, c: &FluxCluster) {
    let loads = c.loads();
    let bars: Vec<String> = loads.iter().map(|&w| format!("{:>8.0}", w)).collect();
    println!(
        "{tag:<28} loads [{}]  imbalance {:.2}",
        bars.join(" "),
        c.imbalance()
    );
}

fn main() {
    // 4 machines, 64 mini-partitions, replicated GROUP BY dst COUNT(*).
    let mut cluster = FluxCluster::new(4, 64, &GroupCount::new(vec![1]), vec![1], true);

    // Zipf-skewed packet destinations make some partitions hot.
    let mut gen = PacketGen::new(3, 512, 1.0);
    let mut feed = |c: &mut FluxCluster, n: usize| {
        for t in gen.poll(n) {
            c.route(0, &t).expect("route");
        }
    };

    println!("phase 1: skewed traffic, static partitioning");
    feed(&mut cluster, 40_000);
    print_loads("  after 40k packets", &cluster);

    println!("phase 2: online repartitioning");
    let moved = cluster.rebalance();
    println!(
        "  moved {moved} partitions ({} state entries shipped)",
        cluster.stats().state_moved
    );
    cluster.reset_loads();
    feed(&mut cluster, 40_000);
    print_loads("  after 40k more packets", &cluster);

    println!("phase 3: kill machine 1 (replicas take over)");
    let before = total(&cluster);
    cluster.kill_machine(1).expect("kill");
    let after = total(&cluster);
    println!(
        "  counts before/after failure: {before} / {after}  (promotions: {}, lost: {})",
        cluster.stats().promotions,
        cluster.stats().state_lost
    );
    assert_eq!(before, after, "replication preserves every count");

    println!("phase 4: processing continues on survivors");
    feed(&mut cluster, 20_000);
    print_loads("  after 20k more packets", &cluster);
    println!(
        "  final total count: {} (routed {})",
        total(&cluster),
        cluster.stats().routed
    );
}
