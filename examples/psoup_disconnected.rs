//! PSoup-style disconnected operation (§3.2): clients register standing
//! queries, go away, and return intermittently to retrieve the latest
//! materialized answers — "separating the computation of query results
//! from the delivery of those results."
//!
//! Also shows the data/query symmetry: a query registered *after* the
//! data still answers over history (new query ⋈ old data).
//!
//! ```sh
//! cargo run --example psoup_disconnected
//! ```

use tcq_common::{CmpOp, Timestamp, Value};
use tcq_psoup::{PSoup, PsoupQuery};
use tcq_wrappers::{SensorGen, Source};

fn main() {
    let mut psoup = PSoup::new();

    // A mobile client registers interest in hot sensor readings over a
    // 100-tick window, then disconnects.
    let hot = psoup
        .register_query(PsoupQuery {
            stream: 0,
            predicates: vec![(1, CmpOp::Gt, Value::Float(23.0))],
            window_width: 100,
        })
        .expect("query registers");
    println!("client A registered 'reading > 23.0' (window 100) and disconnected");

    // Sensor data keeps flowing while the client is away.
    let mut gen = SensorGen::new(5, 8);
    let mut now = 0i64;
    let mut feed = |psoup: &mut PSoup, n: usize, now: &mut i64| {
        for t in gen.poll(n) {
            *now = t.ts().ticks();
            psoup.push(0, t);
        }
    };
    feed(&mut psoup, 500, &mut now);

    // Client A reconnects: the window is imposed on the materialized
    // Results Structure — retrieval cost is O(answer), not O(stream).
    let answers = psoup
        .retrieve(hot, Timestamp::logical(now))
        .expect("retrieve");
    println!(
        "client A back at t={now}: {} hot readings in the last 100 ticks",
        answers.len()
    );

    // More data; client A stays away.
    feed(&mut psoup, 1_000, &mut now);

    // A second client arrives late and asks about *history*: new query
    // over old data.
    let cold = psoup
        .register_query(PsoupQuery {
            stream: 0,
            predicates: vec![(1, CmpOp::Lt, Value::Float(17.0))],
            window_width: 300,
        })
        .expect("late query registers");
    let cold_answers = psoup
        .retrieve(cold, Timestamp::logical(now))
        .expect("retrieve");
    println!(
        "client B registered late at t={now}; history already answers: {} cold readings",
        cold_answers.len()
    );

    // Client A returns again; both clients see current windows.
    let again = psoup
        .retrieve(hot, Timestamp::logical(now))
        .expect("retrieve");
    println!(
        "client A back again at t={now}: {} hot readings (fresh window)",
        again.len()
    );

    // Show the materialization-vs-recompute equivalence (the E5 claim).
    let recomputed = psoup
        .retrieve_recompute(hot, Timestamp::logical(now))
        .expect("recompute");
    assert_eq!(again, recomputed);
    println!(
        "materialized retrieval == recompute baseline ({} rows); stats: {:?}",
        recomputed.len(),
        psoup.stats()
    );

    // Housekeeping: evict below every window's reach.
    let evicted = psoup.evict(Timestamp::logical(now));
    println!("evicted {evicted} tuples beyond every window's reach");
}
