//! Golden-file tests for the CQ-SQL front end and planner.
//!
//! Every `tests/sql_corpus/*.sql` query is parsed and run through the
//! full planning pipeline (bind → logical → rewrite → lower); the
//! pretty-printed AST plus the planner's EXPLAIN rendering (logical
//! plan, fired rewrite rules, physical plan, plan signature, and
//! shared-core key) must match the committed `.golden` snapshot
//! byte-for-byte. This pins the parser and both planner layers: any
//! change to precedence, binding, window analysis, a rewrite rule, the
//! shared/continuous/windowed classification, or the sharing signature
//! scheme shows up as a readable golden diff instead of a silent
//! behaviour change.
//!
//! To refresh the snapshots after an intentional front-end change:
//!
//! ```text
//! TCQ_REGEN_GOLDEN=1 cargo test -p tcq --test sql_golden
//! ```
//!
//! then review the `.golden` diff like any other code change.

use std::path::{Path, PathBuf};

use tcq_common::{Catalog, Consistency, DataType, Field, Schema};
use tcq_planner::CqPlanner;
use tcq_sql::parse;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/sql_corpus")
}

/// The streams every corpus query may reference, mirroring the system
/// tests plus the server's built-in `tcq$*` introspection streams.
fn catalog() -> Catalog {
    let c = Catalog::new();
    c.register_stream(
        "ClosingStockPrices",
        Schema::qualified(
            "closingstockprices",
            vec![
                Field::new("timestamp", DataType::Int),
                Field::new("stockSymbol", DataType::Str),
                Field::new("closingPrice", DataType::Float),
            ],
        ),
    )
    .unwrap();
    c.register_stream(
        "Sensors",
        Schema::qualified(
            "sensors",
            vec![
                Field::new("sensor_id", DataType::Int),
                Field::new("reading", DataType::Float),
            ],
        ),
    )
    .unwrap();
    c.register_stream(
        "tcq$queues",
        Schema::qualified(
            "tcq$queues",
            vec![
                Field::new("name", DataType::Str),
                Field::new("depth", DataType::Int),
                Field::new("capacity", DataType::Int),
                Field::new("enqueued", DataType::Int),
                Field::new("dequeued", DataType::Int),
                Field::new("enq_locks", DataType::Int),
                Field::new("deq_locks", DataType::Int),
            ],
        ),
    )
    .unwrap();
    for s in ["tcq$operators", "tcq$flux"] {
        c.register_stream(
            s,
            Schema::qualified(
                s,
                vec![
                    Field::new("name", DataType::Str),
                    Field::new("metric", DataType::Str),
                    Field::new("value", DataType::Int),
                ],
            ),
        )
        .unwrap();
    }
    c.register_stream(
        "tcq$shed",
        Schema::qualified(
            "tcq$shed",
            vec![
                Field::new("stream", DataType::Str),
                Field::new("policy", DataType::Str),
                Field::new("metric", DataType::Str),
                Field::new("value", DataType::Int),
            ],
        ),
    )
    .unwrap();
    c.register_stream(
        "tcq$errors",
        Schema::qualified(
            "tcq$errors",
            vec![
                Field::new("qid", DataType::Int),
                Field::new("operator", DataType::Str),
                Field::new("payload", DataType::Str),
                Field::new("kind", DataType::Str),
            ],
        ),
    )
    .unwrap();
    c
}

/// Parse + plan `sql` and render the snapshot text. The EXPLAIN half
/// resolves consistency against the engine default, like the server's
/// EXPLAIN endpoint does.
fn render(name: &str, sql: &str) -> String {
    let ast = match parse(sql) {
        Ok(ast) => ast,
        Err(e) => panic!("{name}: corpus query fails to parse: {e}"),
    };
    let planned = match CqPlanner::new(catalog()).plan(&ast) {
        Ok(p) => p,
        Err(e) => panic!("{name}: corpus query fails to plan: {e}"),
    };
    format!(
        "-- {name}\n{}\n=== AST ===\n{ast:#?}\n{}",
        sql.trim_end(),
        planned.explain(Consistency::default())
    )
}

#[test]
fn sql_corpus_matches_goldens() {
    let dir = corpus_dir();
    let regen = std::env::var_os("TCQ_REGEN_GOLDEN").is_some();
    let mut queries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "sql"))
        .collect();
    queries.sort();
    assert!(!queries.is_empty(), "empty corpus at {}", dir.display());

    let mut failures = Vec::new();
    for path in &queries {
        let name = path.file_stem().unwrap().to_string_lossy().to_string();
        let sql = std::fs::read_to_string(path).unwrap();
        let got = render(&name, &sql);
        let golden_path = path.with_extension("golden");
        if regen {
            std::fs::write(&golden_path, &got).unwrap();
            continue;
        }
        match std::fs::read_to_string(&golden_path) {
            Ok(want) if want == got => {}
            Ok(want) => {
                // First differing line, for a readable failure message.
                let diff_line = got
                    .lines()
                    .zip(want.lines())
                    .position(|(g, w)| g != w)
                    .map(|i| i + 1)
                    .unwrap_or_else(|| got.lines().count().min(want.lines().count()) + 1);
                failures.push(format!("{name}: differs from golden at line {diff_line}"));
            }
            Err(_) => failures.push(format!("{name}: missing golden {}", golden_path.display())),
        }
    }
    assert!(
        failures.is_empty(),
        "{} corpus snapshot(s) changed:\n  {}\n\
         If the change is intentional, regenerate with\n  \
         TCQ_REGEN_GOLDEN=1 cargo test -p tcq --test sql_golden\n\
         and review the .golden diff.",
        failures.len(),
        failures.join("\n  ")
    );
}

/// The corpus exercises the classes and features it claims to: at least
/// one shared, one continuous, one windowed plan, a join, a `tcq$*`
/// introspection source, a query where a rewrite rule fires, and a pair
/// of queries sharing a core signature (a plan family).
#[test]
fn sql_corpus_covers_the_planner_surface() {
    let dir = corpus_dir();
    let mut classes = std::collections::HashSet::new();
    let mut cores = std::collections::HashMap::new();
    let mut has_join = false;
    let mut has_introspect = false;
    let mut has_rewrite = false;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|x| x != "sql") {
            continue;
        }
        let sql = std::fs::read_to_string(&path).unwrap();
        let planned = CqPlanner::new(catalog()).plan_sql(&sql).unwrap();
        let explain = planned.explain(Consistency::default());
        for class in ["shared", "continuous", "windowed"] {
            if explain.contains(&format!("class: {class}")) {
                classes.insert(class);
            }
        }
        if let Some(core) = planned.core_signature(Consistency::default()) {
            *cores.entry(core.key).or_insert(0u32) += 1;
        }
        has_join |= !planned.physical.joins.is_empty();
        has_introspect |= sql.contains("tcq$");
        has_rewrite |= !planned.rules.is_empty();
    }
    assert_eq!(classes.len(), 3, "corpus misses a query class: {classes:?}");
    assert!(has_join, "corpus needs a join query");
    assert!(has_introspect, "corpus needs a tcq$* query");
    assert!(has_rewrite, "corpus needs a query that triggers a rewrite");
    assert!(
        cores.values().any(|&n| n >= 2),
        "corpus needs a shared-core family (two queries, one core key)"
    );
}
