//! Property-based tests over the core invariants (proptest).
//!
//! * Eddy output ≡ reference nested-loop evaluation, for every routing
//!   policy and any arrival interleaving.
//! * Grouped filters ≡ per-query predicate evaluation.
//! * Symmetric hash join ≡ nested-loop join.
//! * Incremental sliding aggregates ≡ recompute-from-scratch.
//! * Window sequences match closed-form bounds.
//! * Flux routing preserves exactly-once tuple accounting across
//!   rebalances.
//! * Columnar vectorized execution ≡ row execution, byte for byte:
//!   the eddy's selection-bitmap fast path, the window driver's
//!   aggregate kernels, and the full pipeline at partitions ∈ {1, 4},
//!   across batch sizes, selection densities (0% / ~50% / 100%), and
//!   null-heavy columns.
//! * Out-of-order arrival is metamorphic: a bounded event-time shuffle
//!   of the input folds to the same final answers as the in-order run,
//!   at both consistency levels, across partitions, columnar modes,
//!   and crash/reboot interleavings.

use proptest::prelude::*;

use tcq_cacq::{CacqEngine, QuerySpec};
use tcq_common::{CmpOp, Expr, Timestamp, Tuple, Value};
use tcq_eddy::{EddyBuilder, FilterOp, FixedPolicy, LotteryPolicy, NaivePolicy, StemOp};
use tcq_flux::{FluxCluster, GroupCount};
use tcq_stems::SymmetricHashJoin;
use tcq_windows::{AggKind, Bound, ForLoop, LoopCond, SlidingAgg, WindowAgg, WindowIs};

fn int_tuple(vals: &[i64], seq: i64) -> Tuple {
    Tuple::at_seq(vals.iter().map(|&v| Value::Int(v)).collect(), seq)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two filters over one stream: any policy and batching setting
    /// produces exactly the conjunction, in submission order.
    #[test]
    fn eddy_filters_equal_reference(
        values in proptest::collection::vec(-50i64..50, 1..200),
        lo in -40i64..0,
        hi in 0i64..40,
        policy_pick in 0u8..3,
        batch in prop_oneof![Just(1usize), Just(7usize), Just(64usize)],
    ) {
        let policy: Box<dyn tcq_eddy::RoutingPolicy> = match policy_pick {
            0 => Box::new(FixedPolicy::new(vec![0, 1])),
            1 => Box::new(NaivePolicy::new(9)),
            _ => Box::new(LotteryPolicy::new(9)),
        };
        let mut e = EddyBuilder::new(vec![1], policy)
            .filter(FilterOp::new("lo", Expr::col(0).cmp(CmpOp::Ge, Expr::lit(lo))))
            .filter(FilterOp::new("hi", Expr::col(0).cmp(CmpOp::Lt, Expr::lit(hi))))
            .batch_size(batch)
            .build();
        for (i, &v) in values.iter().enumerate() {
            e.submit(0, int_tuple(&[v], i as i64));
        }
        let got: Vec<i64> = e.run().iter().map(|t| t.field(0).as_int().unwrap()).collect();
        let want: Vec<i64> = values.iter().copied().filter(|&v| v >= lo && v < hi).collect();
        prop_assert_eq!(got, want);
    }

    /// Two-way equi-join through an eddy matches the nested-loop count,
    /// whatever the interleaving of sides.
    #[test]
    fn eddy_join_equals_nested_loop(
        keys_l in proptest::collection::vec(0i64..8, 0..60),
        keys_r in proptest::collection::vec(0i64..8, 0..60),
        seed in 0u64..1000,
    ) {
        let mut e = EddyBuilder::new(vec![1, 1], Box::new(NaivePolicy::new(seed)))
            .stem(StemOp::new("stemL", 0, vec![0], vec![1]))
            .stem(StemOp::new("stemR", 1, vec![0], vec![0]))
            .build();
        let mut got = 0usize;
        let (mut i, mut j, mut seq) = (0usize, 0usize, 0i64);
        // Deterministic pseudo-random interleaving from the seed.
        let mut x = seed.wrapping_add(1);
        while i < keys_l.len() || j < keys_r.len() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let left_turn = (x >> 60) % 2 == 0;
            if (left_turn && i < keys_l.len()) || j >= keys_r.len() {
                got += e.push(0, int_tuple(&[keys_l[i]], seq)).len();
                i += 1;
            } else {
                got += e.push(1, int_tuple(&[keys_r[j]], seq)).len();
                j += 1;
            }
            seq += 1;
        }
        let want = keys_l
            .iter()
            .flat_map(|a| keys_r.iter().map(move |b| (a, b)))
            .filter(|(a, b)| a == b)
            .count();
        prop_assert_eq!(got, want);
    }

    /// The CACQ grouped-filter engine delivers exactly the queries whose
    /// conjunctive predicates a tuple satisfies.
    #[test]
    fn cacq_equals_per_query_evaluation(
        preds in proptest::collection::vec((0i64..100, 0u8..4), 1..30),
        values in proptest::collection::vec(0i64..100, 1..80),
    ) {
        let mut engine = CacqEngine::new();
        let mut specs = Vec::new();
        for (threshold, op_pick) in &preds {
            let op = match op_pick {
                0 => CmpOp::Gt,
                1 => CmpOp::Le,
                2 => CmpOp::Eq,
                _ => CmpOp::Ne,
            };
            let spec = QuerySpec::select(0, vec![(0, op, Value::Int(*threshold))]);
            let id = engine.add_query(spec).unwrap();
            specs.push((id, op, *threshold));
        }
        for (i, &v) in values.iter().enumerate() {
            let t = int_tuple(&[v], i as i64);
            let mut got: Vec<u64> = engine.push(0, t).into_iter().map(|(q, _)| q).collect();
            got.sort_unstable();
            let mut want: Vec<u64> = specs
                .iter()
                .filter(|(_, op, th)| {
                    let ord = v.cmp(th);
                    op.matches(ord)
                })
                .map(|(id, _, _)| *id)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    /// Symmetric hash join ≡ nested loops (counts and multiset of keys).
    #[test]
    fn sym_join_equals_nested_loop(
        keys_l in proptest::collection::vec(0i64..6, 0..50),
        keys_r in proptest::collection::vec(0i64..6, 0..50),
    ) {
        let mut j = SymmetricHashJoin::new(vec![0], vec![0], 1, None);
        let mut got = 0usize;
        for (i, &k) in keys_l.iter().enumerate() {
            got += j.push_left(int_tuple(&[k], i as i64)).len();
        }
        for (i, &k) in keys_r.iter().enumerate() {
            got += j.push_right(int_tuple(&[k], (keys_l.len() + i) as i64)).len();
        }
        let want = keys_l
            .iter()
            .flat_map(|a| keys_r.iter().map(move |b| (a, b)))
            .filter(|(a, b)| a == b)
            .count();
        prop_assert_eq!(got, want);
    }

    /// Incremental sliding aggregates agree with brute-force recompute
    /// at every step, for every aggregate kind.
    #[test]
    fn sliding_aggregates_equal_recompute(
        values in proptest::collection::vec(-1000i64..1000, 1..150),
        width in 1i64..40,
        kind_pick in 0u8..5,
    ) {
        let kind = [AggKind::Count, AggKind::Sum, AggKind::Min, AggKind::Max, AggKind::Avg]
            [kind_pick as usize];
        let mut agg = SlidingAgg::new(kind);
        for (i, &v) in values.iter().enumerate() {
            let t = i as i64 + 1;
            agg.push(Timestamp::logical(t), &Value::Float(v as f64));
            agg.evict_before(Timestamp::logical(t - width + 1));
            let lo = ((t - width + 1).max(1) - 1) as usize;
            let window: Vec<f64> = values[lo..=i].iter().map(|&x| x as f64).collect();
            let want = match kind {
                AggKind::Count => Value::Int(window.len() as i64),
                AggKind::Sum => Value::Float(window.iter().sum()),
                AggKind::Avg => Value::Float(window.iter().sum::<f64>() / window.len() as f64),
                AggKind::Min => Value::Float(window.iter().cloned().fold(f64::INFINITY, f64::min)),
                AggKind::Max => {
                    Value::Float(window.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
                }
            };
            let got = agg.value();
            match (got, want) {
                (Value::Float(a), Value::Float(b)) => prop_assert!((a - b).abs() < 1e-6),
                (a, b) => prop_assert_eq!(a, b),
            }
        }
    }

    /// Window sequences match the closed form `coeff·t + offset` and
    /// respect the loop condition.
    #[test]
    fn window_sequences_match_closed_form(
        init in -20i64..20,
        len in 1i64..30,
        step in 1i64..4,
        lcoeff in -1i64..2,
        loff in -10i64..10,
        width in 0i64..10,
    ) {
        let header = ForLoop { init, cond: LoopCond::Lt(init + len), step };
        let w = WindowIs::new(
            "s",
            Bound::affine(lcoeff, loff),
            Bound::affine(lcoeff, loff + width),
        );
        let seq = tcq_windows::WindowSeq::single(header, w);
        let mut count = 0i64;
        for (t, ws) in seq.iter() {
            prop_assert!(t < init + len);
            prop_assert_eq!(t, init + count * step);
            let (l, r) = (ws[0].1, ws[0].2);
            prop_assert_eq!(l.ticks(), lcoeff * t + loff);
            prop_assert_eq!(r.ticks(), lcoeff * t + loff + width);
            count += 1;
        }
        prop_assert_eq!(count, (len + step - 1) / step);
    }

    /// Flux accounts for every routed tuple exactly once, across
    /// arbitrary rebalance points, machine speeds, and skew.
    #[test]
    fn flux_exactly_once_accounting(
        keys in proptest::collection::vec(0i64..40, 1..300),
        rebalance_every in 10usize..100,
        slow_machine in 0usize..3,
    ) {
        let mut c = FluxCluster::new(3, 16, &GroupCount::new(vec![0]), vec![0], false);
        c.set_speed(slow_machine, 0.3);
        for (i, &k) in keys.iter().enumerate() {
            c.route(0, &int_tuple(&[k], i as i64)).unwrap();
            if i % rebalance_every == rebalance_every - 1 {
                c.rebalance();
            }
        }
        let total: i64 = c
            .snapshot()
            .iter()
            .map(|t| t.field(t.arity() - 1).as_int().unwrap())
            .sum();
        prop_assert_eq!(total, keys.len() as i64);
        // And per-key counts match.
        let mut per_key = std::collections::HashMap::new();
        for &k in &keys {
            *per_key.entry(k).or_insert(0i64) += 1;
        }
        for row in c.snapshot() {
            let k = row.field(0).as_int().unwrap();
            let n = row.field(1).as_int().unwrap();
            prop_assert_eq!(per_key.get(&k).copied().unwrap_or(0), n);
        }
    }
}

/// Run the full server pipeline (FrontEnd → Wrapper → Executor → egress)
/// at one batch size and return every client-visible answer: the sorted
/// rows of a continuous selection, plus the windowed query's
/// `(window_t, count)` sequence in release order.
fn pipeline_answers(batch_size: usize, prices: &[i64]) -> (Vec<i64>, Vec<(i64, i64)>) {
    use tcq_common::{DataType, Field, Schema};
    use tcq_wrappers::IterSource;

    let config = tcq::Config {
        batch_size,
        executor_threads: 1,
        ..tcq::Config::default()
    };
    let server = tcq::Server::start(config).expect("server starts");
    server
        .register_stream(
            "s",
            Schema::qualified("s", vec![Field::new("price", DataType::Int)]),
        )
        .expect("stream registers");
    let select = server
        .submit("SELECT price FROM s WHERE price >= 50")
        .expect("selection submits");
    let horizon = prices.len() as i64;
    let windowed = server
        .submit(&format!(
            "SELECT COUNT(*) AS n FROM s \
             for (t = 1; t <= {horizon}; t++) {{ WindowIs(s, 1, t); }}"
        ))
        .expect("windowed query submits");
    let tuples: Vec<Tuple> = prices
        .iter()
        .enumerate()
        .map(|(i, &p)| int_tuple(&[p], i as i64 + 1))
        .collect();
    server
        .attach_source("s", Box::new(IterSource::new("gen", tuples.into_iter())))
        .expect("source attaches");
    assert!(
        server.drain_sources(std::time::Duration::from_secs(60)),
        "pipeline drains"
    );
    let mut rows: Vec<i64> = select
        .drain()
        .iter()
        .flat_map(|set| set.rows.iter().map(|t| t.field(0).as_int().unwrap()))
        .collect();
    rows.sort_unstable();
    let windows: Vec<(i64, i64)> = windowed
        .drain()
        .iter()
        .map(|set| {
            (
                set.window_t.expect("windowed result carries its t"),
                set.rows[0].field(0).as_int().unwrap(),
            )
        })
        .collect();
    server.shutdown();
    (rows, windows)
}

/// Non-proptest cross-check: the E1 scenario's invariant — adaptive and
/// static plans produce identical *answers* (adaptivity only changes
/// work), even across a selectivity drift.
#[test]
fn adaptive_and_static_answers_identical_under_drift() {
    use tcq_wrappers::{DriftGen, Source};
    let build = |policy: Box<dyn tcq_eddy::RoutingPolicy>| {
        EddyBuilder::new(vec![2], policy)
            .filter(FilterOp::new(
                "fa",
                Expr::col(0).cmp(CmpOp::Gt, Expr::lit(45i64)),
            ))
            .filter(FilterOp::new(
                "fb",
                Expr::col(1).cmp(CmpOp::Gt, Expr::lit(45i64)),
            ))
            .build()
    };
    let tuples: Vec<Tuple> = DriftGen::new(42, 2_000).poll(4_000);
    let mut adaptive = build(Box::new(LotteryPolicy::new(1)));
    let mut fixed = build(Box::new(FixedPolicy::new(vec![0, 1])));
    let mut a_out = Vec::new();
    let mut f_out = Vec::new();
    for t in &tuples {
        a_out.extend(adaptive.push(0, t.clone()));
        f_out.extend(fixed.push(0, t.clone()));
    }
    assert_eq!(a_out, f_out, "answers agree; only routing work differs");
}

/// Map a generated `(marker, v)` pair to a possibly-NULL Int field:
/// marker 0 leaves a NULL (~one row in five), so the columnar valid
/// bitmaps carry real holes, not just all-ones.
fn opt_int(marker: u8, v: i64) -> Value {
    if marker == 0 {
        Value::Null
    } else {
        Value::Int(v)
    }
}

/// Same, as a Float column; halves are exact in f64, so row and
/// columnar arithmetic cannot diverge by rounding.
fn opt_float(marker: u8, v: i64) -> Value {
    if marker == 0 {
        Value::Null
    } else {
        Value::Float(v as f64 / 2.0)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Columnar tentpole invariant, eddy layer: the vectorized filter
    /// fast path emits byte-identical tuples in identical order to the
    /// row path, for any mix of Int/Float/NULL columns, any batch
    /// size, and any selection density — the threshold strategies pin
    /// the 0% and 100% corners explicitly and sweep the middle.
    #[test]
    fn columnar_eddy_equals_row_eddy(
        rows in proptest::collection::vec(
            ((0u8..5, -100i64..100), (0u8..5, -100i64..100)), 1..250),
        lo in prop_oneof![Just(-200i64), Just(0i64), Just(200i64), -120i64..120],
        hi in prop_oneof![Just(-200i64), Just(0i64), Just(200i64), -120i64..120],
        batch in prop_oneof![Just(1usize), Just(7usize), Just(64usize), Just(256usize)],
    ) {
        use tcq_common::BinOp;
        let build = |columnar: bool| {
            EddyBuilder::new(vec![2], Box::new(FixedPolicy::new(vec![0, 1, 2])))
                .filter(FilterOp::new("fi", Expr::col(0).cmp(CmpOp::Ge, Expr::lit(lo))))
                .filter(FilterOp::new(
                    "ff",
                    Expr::Arith(
                        BinOp::Mul,
                        Box::new(Expr::col(1)),
                        Box::new(Expr::lit(2.0f64)),
                    )
                    .cmp(CmpOp::Lt, Expr::lit(hi as f64)),
                ))
                .filter(FilterOp::new(
                    "fa",
                    Expr::Arith(BinOp::Add, Box::new(Expr::col(0)), Box::new(Expr::col(1)))
                        .cmp(CmpOp::Ne, Expr::lit(7i64)),
                ))
                .batch_size(batch)
                .columnar(columnar)
                .build()
        };
        let tuples: Vec<Tuple> = rows
            .iter()
            .enumerate()
            .map(|(i, &((mi, vi), (mf, vf)))| {
                Tuple::at_seq(vec![opt_int(mi, vi), opt_float(mf, vf)], i as i64)
            })
            .collect();
        let mut row_eddy = build(false);
        let mut col_eddy = build(true);
        let mut row_out = Vec::new();
        let mut col_out = Vec::new();
        for chunk in tuples.chunks(batch) {
            row_out.extend(row_eddy.push_batch(0, chunk.to_vec()));
            col_out.extend(col_eddy.push_batch(0, chunk.to_vec()));
        }
        prop_assert_eq!(&row_out, &col_out);
        prop_assert_eq!(row_eddy.stats().emitted, col_eddy.stats().emitted);
        prop_assert_eq!(row_eddy.stats().dropped, col_eddy.stats().dropped);
    }

    /// Columnar tentpole invariant, window-aggregate layer: the
    /// columnar fold matches `aggregate_rows` byte for byte across all
    /// five aggregate kinds, including null-heavy and empty inputs.
    #[test]
    fn columnar_aggregates_equal_row_aggregates(
        vals in proptest::collection::vec((0u8..5, -1000i64..1000), 0..150),
    ) {
        use tcq_common::{Catalog, DataType, Field, Schema};
        use tcq_sql::Planner;
        let catalog = Catalog::new();
        catalog
            .register_stream(
                "m",
                Schema::qualified("m", vec![Field::new("v", DataType::Float)]),
            )
            .unwrap();
        let plan = Planner::new(catalog)
            .plan_sql(
                "SELECT COUNT(*) AS n, SUM(v) AS s, AVG(v) AS a, \
                 MIN(v) AS lo, MAX(v) AS hi FROM m",
            )
            .unwrap();
        let rows: Vec<Tuple> = vals
            .iter()
            .enumerate()
            .map(|(i, &(m, v))| Tuple::at_seq(vec![opt_float(m, v)], i as i64))
            .collect();
        let row = tcq::executor::aggregate_rows(&plan, &rows);
        let col = tcq::executor::aggregate_rows_columnar(&plan, &rows)
            .expect("single-group column-arg plan is vectorizable");
        prop_assert_eq!(row, col);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// End-to-end SQL: a randomly parameterized filter query through
    /// parse → plan → eddy matches direct predicate evaluation.
    #[test]
    fn sql_filter_queries_match_reference(
        lo in 0i64..50,
        width in 1i64..50,
        sym_pick in 0usize..3,
        prices in proptest::collection::vec((0i64..100, 0usize..3), 1..80),
    ) {
        use tcq_common::{Catalog, DataType, Field, Schema};
        use tcq_sql::Planner;

        let syms = ["MSFT", "IBM", "ORCL"];
        let catalog = Catalog::new();
        catalog
            .register_stream(
                "csp",
                Schema::qualified(
                    "csp",
                    vec![
                        Field::new("sym", DataType::Str),
                        Field::new("price", DataType::Int),
                    ],
                ),
            )
            .unwrap();
        let sql = format!(
            "SELECT price FROM csp WHERE sym = '{}' AND price >= {lo} AND price < {}",
            syms[sym_pick],
            lo + width
        );
        let plan = Planner::new(catalog).plan_sql(&sql).unwrap();
        let mut eddy = plan.build_eddy(Box::new(NaivePolicy::new(3))).unwrap();
        let mut got = Vec::new();
        for (i, (price, s)) in prices.iter().enumerate() {
            let t = Tuple::at_seq(
                vec![Value::str(syms[*s]), Value::Int(*price)],
                i as i64,
            );
            for full in eddy.push(0, t) {
                got.push(plan.project(&full).unwrap().field(0).as_int().unwrap());
            }
        }
        let want: Vec<i64> = prices
            .iter()
            .filter(|(p, s)| *s == sym_pick && *p >= lo && *p < lo + width)
            .map(|(p, _)| *p)
            .collect();
        prop_assert_eq!(got, want);
    }

    /// DupElim ≡ first-occurrence filtering for any value sequence.
    #[test]
    fn dupelim_equals_first_occurrence(values in proptest::collection::vec(0i64..20, 0..200)) {
        use tcq_eddy::DupElim;
        let mut d = DupElim::new();
        let mut seen = std::collections::HashSet::new();
        for (i, &v) in values.iter().enumerate() {
            let emitted = d.push(Tuple::at_seq(vec![Value::Int(v)], i as i64)).is_some();
            prop_assert_eq!(emitted, seen.insert(v));
        }
    }

    /// End-to-end batching invariant: a pipeline running with
    /// `batch_size > 1` produces exactly the same answers as the
    /// unbatched (`batch_size = 1`) pipeline — the result multiset of a
    /// continuous selection matches, and the punctuation-driven windowed
    /// query releases the same windows at the same logical times with
    /// the same contents.
    #[test]
    fn batched_pipeline_equals_unbatched(
        prices in proptest::collection::vec(0i64..100, 4..80),
        batch in prop_oneof![Just(3usize), Just(16usize), Just(64usize)],
    ) {
        let reference = pipeline_answers(1, &prices);
        let batched = pipeline_answers(batch, &prices);
        prop_assert_eq!(reference, batched);
    }

    /// Eddy routing conservation: whatever the policy, filter set, and
    /// batching, every ingested tuple is either emitted exactly once
    /// (and then really satisfies every predicate) or provably dropped —
    /// `submitted == emitted + dropped`, nothing stranded. The lineage
    /// done-mask also bounds work: no operator is ever visited twice by
    /// one tuple, so per-op routed <= submitted and total decisions
    /// <= ops x submitted.
    #[test]
    fn eddy_routing_conserves_every_tuple(
        values in proptest::collection::vec(-60i64..60, 1..150),
        bounds in proptest::collection::vec(-50i64..50, 1..4),
        policy_pick in 0u8..3,
        batch in prop_oneof![Just(1usize), Just(5usize), Just(32usize)],
        seed in 0u64..1000,
    ) {
        let n_ops = bounds.len();
        let policy: Box<dyn tcq_eddy::RoutingPolicy> = match policy_pick {
            0 => Box::new(FixedPolicy::new((0..n_ops).collect())),
            1 => Box::new(NaivePolicy::new(seed)),
            _ => Box::new(LotteryPolicy::new(seed)),
        };
        let mut b = EddyBuilder::new(vec![1], policy);
        for (i, &bound) in bounds.iter().enumerate() {
            b = b.filter(FilterOp::new(
                format!("f{i}"),
                Expr::col(0).cmp(CmpOp::Ge, Expr::lit(bound)),
            ));
        }
        let mut e = b.batch_size(batch).build();
        for (i, &v) in values.iter().enumerate() {
            e.submit(0, int_tuple(&[v], i as i64));
        }
        let out = e.run();
        let stats = e.stats();
        let n = values.len() as u64;

        // Conservation: in == out + filtered, nothing in limbo.
        prop_assert_eq!(stats.submitted, n);
        prop_assert_eq!(stats.emitted, out.len() as u64);
        prop_assert_eq!(stats.emitted + stats.dropped, n);
        prop_assert_eq!(stats.stranded, 0);

        // Every emitted tuple passes all predicates (recomputed here),
        // appears once, and every passing input is represented.
        let mut seqs = std::collections::HashSet::new();
        for t in &out {
            let v = t.field(0).as_int().unwrap();
            prop_assert!(bounds.iter().all(|&bound| v >= bound));
            prop_assert!(seqs.insert(t.ts().ticks()), "duplicate emission");
        }
        let want_pass = values
            .iter()
            .filter(|&&v| bounds.iter().all(|&bound| v >= bound))
            .count() as u64;
        prop_assert_eq!(stats.emitted, want_pass);

        // Done-mask bound: one visit per (tuple, operator) maximum.
        let mut total_routed = 0u64;
        for op in e.op_stats() {
            prop_assert!(op.routed <= n, "an operator saw a tuple twice");
            prop_assert!(op.survived <= op.routed);
            total_routed += op.routed;
        }
        prop_assert!(total_routed <= n_ops as u64 * n);
        // One decision steers a whole batch (§4.3), so decisions can be
        // fewer than routed tuples but never more; unbatched they match.
        prop_assert!(stats.decisions <= total_routed);
        if batch == 1 {
            prop_assert_eq!(stats.decisions, total_routed);
        }
    }

    /// Overload triage conserves tuples: whatever the shed policy, load,
    /// and seed, once the spill backlog is empty every ingested tuple is
    /// either delivered to the client or counted shed — none vanish and
    /// none are double-counted (`ingested == delivered + shed +
    /// spill_pending` at quiesce).
    #[test]
    fn shed_conservation_across_policies(
        n in 50i64..200,
        policy_pick in 0u8..5,
        seed in 0u64..1000,
    ) {
        use tcq::ShedPolicy;
        let policy = match policy_pick {
            0 => ShedPolicy::Block,
            1 => ShedPolicy::DropNewest,
            2 => ShedPolicy::DropOldest,
            3 => ShedPolicy::Sample { rate: 0.35 },
            _ => ShedPolicy::Spill,
        };
        let server = tcq::Server::start(tcq::Config {
            executor_threads: 1,
            input_queue: 8,
            batch_size: 1,
            eo_batch_delay: Some(std::time::Duration::from_micros(200)),
            result_buffer: 4096,
            seed,
            shed_policy: policy,
            ..tcq::Config::default()
        })
        .expect("server starts");
        server
            .register_stream(
                "s",
                tcq_common::Schema::qualified(
                    "s",
                    vec![tcq_common::Field::new("seq", tcq_common::DataType::Int)],
                ),
            )
            .expect("stream registers");
        let q = server.submit("SELECT seq FROM s WHERE seq >= 0").expect("query submits");
        for i in 1..=n {
            server.push_at("s", vec![Value::Int(i)], i).expect("push succeeds");
        }
        // Quiesce: wait out any in-flight spill episodes, then barrier.
        let start = std::time::Instant::now();
        while server.shed_stats("s").unwrap().spill_pending > 0 {
            prop_assert!(
                start.elapsed() < std::time::Duration::from_secs(30),
                "spill backlog never drained"
            );
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        server.sync();
        let st = server.shed_stats("s").unwrap();
        let delivered: u64 = q.drain().iter().map(|set| set.rows.len() as u64).sum();
        prop_assert!(
            n as u64 == delivered + st.shed + st.spill_pending,
            "policy {:?}: n {} delivered {} shed {} pending {}",
            policy, n, delivered, st.shed, st.spill_pending
        );
        server.shutdown();
    }

    /// Juggle is a permutation: nothing dropped, nothing invented.
    #[test]
    fn juggle_is_a_permutation(
        values in proptest::collection::vec(-100i64..100, 0..150),
        cap in 1usize..20,
    ) {
        use tcq_eddy::Juggle;
        let mut j = Juggle::new(cap, |t: &Tuple| t.field(0).as_int().unwrap());
        let mut out = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            out.extend(j.push(Tuple::at_seq(vec![Value::Int(v)], i as i64)));
        }
        out.extend(j.drain());
        let mut got: Vec<i64> = out.iter().map(|t| t.field(0).as_int().unwrap()).collect();
        let mut want = values.clone();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}

/// Run a mixed workload — a continuous selection and a windowed count
/// over stream `s`, plus a pinned two-stream equi-join against `r` — in
/// deterministic step mode at one partition count, and return every
/// query's full drained output in delivery order (no sorting: the
/// egress merge must restore byte-identical order, not just the same
/// multiset).
fn partitioned_answers(
    partitions: usize,
    batch_size: usize,
    columnar: bool,
    prices: &[i64],
    keys: &[i64],
) -> Vec<Vec<tcq::ResultSet>> {
    use tcq_common::{DataType, Field, Schema};

    let server = tcq::Server::start(tcq::Config {
        step_mode: true,
        batch_size,
        partitions,
        columnar,
        ..tcq::Config::default()
    })
    .expect("server starts");
    server
        .register_stream(
            "s",
            Schema::qualified("s", vec![Field::new("price", DataType::Int)]),
        )
        .expect("s registers");
    server
        .register_stream(
            "r",
            Schema::qualified(
                "r",
                vec![
                    Field::new("k", DataType::Int),
                    Field::new("w", DataType::Int),
                ],
            ),
        )
        .expect("r registers");
    let select = server
        .submit("SELECT price FROM s WHERE price >= 50")
        .expect("selection submits");
    let horizon = prices.len() as i64;
    let windowed = server
        .submit(&format!(
            "SELECT COUNT(*) AS n FROM s \
             for (t = 1; t <= {horizon}; t++) {{ WindowIs(s, 1, t); }}"
        ))
        .expect("windowed submits");
    let join = server
        .submit("SELECT r.w FROM s, r WHERE s.price = r.k")
        .expect("join submits");
    for (i, &p) in prices.iter().enumerate() {
        let ts = i as i64 + 1;
        server
            .push_at("s", vec![Value::Int(p)], ts)
            .expect("s push");
        if let Some(&k) = keys.get(i) {
            server
                .push_at("r", vec![Value::Int(k), Value::Int(k * 10)], ts)
                .expect("r push");
        }
    }
    server.punctuate("s", horizon).expect("punctuate");
    server.sync();
    server.assert_quiescent();
    let out = vec![select.drain(), windowed.drain(), join.drain()];
    server.shutdown();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Flux tentpole invariant: sharding the pipeline across EO
    /// partitions is invisible to clients. For random stream contents,
    /// batch sizes, and partition counts, every query's output — row
    /// order included — is byte-identical to the single-partition run.
    #[test]
    fn partitioned_pipeline_equals_single_partition(
        prices in proptest::collection::vec(0i64..100, 4..60),
        keys in proptest::collection::vec(0i64..100, 0..60),
        batch in prop_oneof![Just(1usize), Just(7usize), Just(32usize)],
        partitions in prop_oneof![Just(2usize), Just(3usize), Just(4usize)],
    ) {
        // Honor the TCQ_COLUMNAR escape hatch so the CI matrix runs
        // this invariant on both execution paths.
        let columnar = tcq::Config::default().columnar;
        let reference = partitioned_answers(1, batch, columnar, &prices, &keys);
        let sharded = partitioned_answers(partitions, batch, columnar, &prices, &keys);
        prop_assert_eq!(reference, sharded);
    }

    /// Columnar tentpole invariant, pipeline layer: flipping
    /// `Config::columnar` is invisible to clients — every query's
    /// drained output (row order included) is byte-identical between
    /// the columnar and row paths, at one partition and at four.
    #[test]
    fn columnar_pipeline_equals_row_pipeline(
        prices in proptest::collection::vec(0i64..100, 4..60),
        keys in proptest::collection::vec(0i64..100, 0..60),
        batch in prop_oneof![Just(1usize), Just(7usize), Just(32usize)],
        partitions in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let row = partitioned_answers(partitions, batch, false, &prices, &keys);
        let col = partitioned_answers(partitions, batch, true, &prices, &keys);
        prop_assert_eq!(row, col);
    }
}

// ---------------------------------------------------------------------
// Durability: WAL frame codec and crash-recovery properties (DESIGN §14)
// ---------------------------------------------------------------------

use proptest::strategy::Rng;
use tcq_storage::wal::{encode_record, read_frames, WalRecord};

/// One codec value of any kind — Int, Float, Str (multi-byte included),
/// Bool, Ts, and NULL — so logged batches exercise the whole tuple
/// codec. (The vendored proptest has no `prop_map`; strategies are
/// plain samplers.)
struct ArbWalValue;

impl Strategy for ArbWalValue {
    type Value = Value;
    fn sample(&self, rng: &mut Rng) -> Value {
        match rng.below(6) {
            0 => Value::Int(rng.next_u64() as i64),
            1 => Value::Float((rng.below(8001) as i64 - 4000) as f64 / 4.0),
            2 => {
                let pool = ['a', 'z', '0', '9', '$', '_', 'é', 'λ', '🦀'];
                let len = rng.below(9) as usize;
                Value::str(
                    (0..len)
                        .map(|_| pool[rng.below(pool.len() as u64) as usize])
                        .collect::<String>(),
                )
            }
            3 => Value::Bool(rng.next_u64() & 1 == 1),
            4 => Value::Ts(Timestamp::logical(rng.next_u64() as i64)),
            _ => Value::Null,
        }
    }
}

/// One WAL record of any kind, with small gids so declarations, batches
/// and punctuations interleave over the same streams.
struct ArbWalRecord;

impl Strategy for ArbWalRecord {
    type Value = WalRecord;
    fn sample(&self, rng: &mut Rng) -> WalRecord {
        let gid = rng.below(8) as u32;
        match rng.below(3) {
            0 => WalRecord::StreamDecl {
                gid,
                name: format!("stream-{}", rng.below(8)),
            },
            1 => WalRecord::Batch {
                gid,
                tuples: (0..rng.below(5))
                    .map(|i| {
                        let fields = (0..rng.below(4)).map(|_| ArbWalValue.sample(rng)).collect();
                        Tuple::at_seq(fields, rng.below(1000) as i64 + i as i64)
                    })
                    .collect(),
            },
            _ => WalRecord::Punct {
                gid,
                ticks: rng.next_u64() as i64,
            },
        }
    }
}

/// Encode `records` back to back, returning the buffer and each frame's
/// end offset (so `bounds[i]` is the byte length of the first `i + 1`
/// frames).
fn encode_all(records: &[WalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut buf = Vec::new();
    let mut bounds = Vec::with_capacity(records.len());
    for rec in records {
        encode_record(rec, &mut buf);
        bounds.push(buf.len());
    }
    (buf, bounds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// WAL frame codec round-trip: any record sequence survives
    /// encode → scan byte-identically, and the scan consumes the whole
    /// buffer (no silent truncation of a healthy log).
    #[test]
    fn wal_frames_round_trip(
        records in proptest::collection::vec(ArbWalRecord, 0..12),
    ) {
        let (buf, _) = encode_all(&records);
        let (got, consumed) = read_frames(&buf);
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(got, records);
    }

    /// Torn tail: cutting the log at *any* byte offset — mid-header,
    /// mid-payload, or on a frame boundary — yields exactly the longest
    /// whole-frame prefix, and `consumed` points at its end (the offset
    /// recovery truncates to).
    #[test]
    fn wal_torn_tail_recovers_longest_valid_prefix(
        records in proptest::collection::vec(ArbWalRecord, 1..12),
        cut_seed in any::<u64>(),
    ) {
        let (buf, bounds) = encode_all(&records);
        let cut = (cut_seed % (buf.len() as u64 + 1)) as usize;
        let whole = bounds.iter().take_while(|&&b| b <= cut).count();
        let (got, consumed) = read_frames(&buf[..cut]);
        prop_assert_eq!(consumed, if whole == 0 { 0 } else { bounds[whole - 1] });
        prop_assert_eq!(got, records[..whole].to_vec());
    }

    /// Bit flip: corrupting any single bit of a frame's CRC or payload
    /// ends the valid prefix exactly there — CRC32 detects all
    /// single-bit errors, so the scan returns precisely the frames
    /// before the damaged one and never decodes garbage past it.
    #[test]
    fn wal_bit_flip_ends_prefix_at_damaged_frame(
        records in proptest::collection::vec(ArbWalRecord, 1..10),
        frame_seed in any::<u64>(),
        byte_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let (mut buf, bounds) = encode_all(&records);
        let f = (frame_seed % records.len() as u64) as usize;
        let start = if f == 0 { 0 } else { bounds[f - 1] };
        // Flip inside the CRC word or the payload (offsets 4..), never
        // the length field: a damaged length is a *torn* tail (covered
        // above); a damaged body must fail the checksum.
        let span = bounds[f] - start - 4;
        let off = start + 4 + (byte_seed % span as u64) as usize;
        buf[off] ^= 1 << bit;
        let (got, consumed) = read_frames(&buf);
        prop_assert_eq!(consumed, start);
        prop_assert_eq!(got, records[..f].to_vec());
    }
}

// ---------------------------------------------------------------------
// Out-of-order arrival: the order-shuffle metamorphic property (§16)
// ---------------------------------------------------------------------

/// Build a disorder episode over the sim harness's `quotes` stream:
/// each drawn `(advance, lag, v)` advances the stream head by
/// `advance` and emits a row `lag` ticks behind it (every lag is
/// within `bound`, so the declaration covers the shuffle). Prices are
/// halves — exact in f64 — so aggregate sums cannot drift with fold
/// order.
fn disorder_episode(
    rows: &[(i64, i64, i64)],
    bound: i64,
    consistency: tcq_common::Consistency,
    partitions: usize,
    columnar: bool,
    crash: bool,
) -> sim::Episode {
    let syms = ["aapl", "ibm", "msft", "orcl"];
    let mut steps = vec![sim::Step::Disorder {
        stream: "quotes".into(),
        bound,
    }];
    let mut cursor = 0i64;
    for (i, &(advance, lag, v)) in rows.iter().enumerate() {
        cursor += advance;
        let ticks = (cursor - lag).max(0);
        steps.push(sim::Step::Row {
            stream: "quotes".into(),
            ticks,
            fields: vec![
                Value::Int(ticks),
                Value::str(syms[v as usize % 4]),
                Value::Float(v as f64 / 2.0),
            ],
        });
        if crash && i == rows.len() / 2 {
            steps.push(sim::Step::Crash);
        }
    }
    steps.push(sim::Step::Settle);
    sim::Episode {
        seed: 0x0D15_0BDE,
        policy: tcq::ShedPolicy::Block,
        batch_size: 2,
        input_queue: 64,
        flux_steps: 0,
        partitions,
        durability: if crash {
            tcq::Durability::Fsync
        } else {
            tcq::Durability::Off
        },
        columnar: Some(columnar),
        on_storage_error: None,
        consistency: Some(consistency),
        queries: vec![
            "SELECT sym, price FROM quotes WHERE price >= 5".into(),
            "SELECT COUNT(*), SUM(price) FROM quotes \
             for (t = 2; t <= 40; t += 3) { WindowIs(quotes, t - 5, t); }"
                .into(),
        ],
        steps,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The event-time tentpole invariant: for any bounded shuffle of
    /// arrival order, any consistency level, partitions ∈ {1, 4},
    /// columnar ∈ {0, 1}, and an optional crash/reboot in the middle,
    /// the episode passes the full sim check — byte-identical replay,
    /// engine invariants, the differential oracle (which folds
    /// speculative retractions), *and* the order-shuffle metamorphic
    /// comparison against the in-order twin.
    #[test]
    fn out_of_order_runs_fold_to_in_order_answers(
        rows in proptest::collection::vec((0i64..3, 0i64..4, 0i64..40), 4..32),
        bound in 3i64..6,
        level_pick in 0u8..2,
        partitions in prop_oneof![Just(1usize), Just(4usize)],
        columnar_pick in 0u8..2,
        crash_pick in 0u8..2,
    ) {
        let consistency = if level_pick == 0 {
            tcq_common::Consistency::Watermark
        } else {
            tcq_common::Consistency::Speculative
        };
        let ep = disorder_episode(
            &rows,
            bound,
            consistency,
            partitions,
            columnar_pick == 1,
            crash_pick == 1,
        );
        prop_assert!(
            sim::metamorphic_eligible(&ep),
            "the property episode must always run the metamorphic check"
        );
        let failures = sim::check_episode(&ep);
        prop_assert!(
            failures.is_empty(),
            "{} shuffle failed:\n{}",
            consistency.name(),
            failures.join("\n")
        );
    }
}

static RECOVERY_DIR_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Boot a deterministic step-mode durable server over `dir` with the
/// quotes-like schema the recovery property replays.
fn durable_step_server(dir: &std::path::Path) -> tcq::Server {
    use tcq_common::{DataType, Field, Schema};
    let server = tcq::Server::start(tcq::Config {
        step_mode: true,
        batch_size: 2,
        durability: tcq::Durability::Buffered,
        archive_dir: Some(dir.to_path_buf()),
        ..tcq::Config::default()
    })
    .expect("durable server starts");
    server
        .register_stream(
            "s",
            Schema::qualified("s", vec![Field::new("price", DataType::Int)]),
        )
        .expect("stream registers");
    server
}

/// One recovered incarnation: boot from `dir`, re-submit the query set,
/// replay the WAL, quiesce, and render everything client-visible.
fn recover_and_render(dir: &std::path::Path, horizon: i64) -> String {
    let server = durable_step_server(dir);
    let select = server
        .submit("SELECT price FROM s WHERE price >= 50")
        .expect("selection submits");
    let windowed = server
        .submit(&format!(
            "SELECT COUNT(*) AS n FROM s \
             for (t = 1; t <= {horizon}; t++) {{ WindowIs(s, 1, t); }}"
        ))
        .expect("windowed submits");
    server.recover().expect("recovery replays");
    server.sync();
    server.assert_quiescent();
    let rendered = format!("{:?}|{:?}", select.drain(), windowed.drain());
    // Crash again: drop without shutdown, leaving the disk state for
    // the next incarnation exactly as a process kill would.
    drop(server);
    rendered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Recovery idempotence: crash → recover → crash → recover yields
    /// byte-identical client output every time. Each recovered
    /// incarnation replays the same admitted history (checkpoint +
    /// WAL tail), and re-logging during replay is suppressed, so
    /// repeated crashes neither duplicate nor lose rows.
    #[test]
    fn wal_recovery_is_idempotent(
        prices in proptest::collection::vec(0i64..100, 1..30),
        punct_every in 1usize..8,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "tcq-prop-recover-{}-{}",
            std::process::id(),
            RECOVERY_DIR_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let horizon = prices.len() as i64;
        {
            // Incarnation 0 admits (and logs) the trace, then crashes.
            let server = durable_step_server(&dir);
            for (i, &p) in prices.iter().enumerate() {
                let t = i as i64 + 1;
                server.push_at("s", vec![Value::Int(p)], t).expect("push");
                if (i + 1) % punct_every == 0 {
                    server.punctuate("s", t).expect("punctuate");
                }
            }
            server.punctuate("s", horizon).expect("final punctuation");
            server.sync();
            drop(server);
        }
        let first = recover_and_render(&dir, horizon);
        let second = recover_and_render(&dir, horizon);
        let third = recover_and_render(&dir, horizon);
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(&first, &third);
        prop_assert!(first.contains("rows"), "recovered output is non-trivial");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
