//! Crash-recovery sweep: kill and restart the server at every round of
//! a small fixed episode, under every (partitions × columnar) corner.
//!
//! Each probe inserts a `Step::Crash` at one schedule position and runs
//! the full `check_episode` loop: the episode executes twice
//! (byte-identical replay), the driver asserts Fjord conservation at
//! every quiesce point — including the post-recovery settle — and the
//! first run is diffed against the reference oracle. Crash placement is
//! therefore exhaustive over the schedule: before the first row, mid
//! window, between punctuation and settle, and after the final settle.
//! A double-crash probe checks that recovery composes (crash, recover,
//! crash again, recover again — still byte-identical to the oracle).

use sim::{check_episode, Episode, Step};
use tcq_common::{Durability, ShedPolicy, Value};

fn row(stream: &str, tick: i64, fields: Vec<Value>) -> Step {
    Step::Row {
        stream: stream.to_string(),
        ticks: tick,
        fields,
    }
}

fn quote(tick: i64, sym: &str, price: f64) -> Step {
    row(
        "quotes",
        tick,
        vec![Value::Int(tick), Value::str(sym), Value::Float(price)],
    )
}

fn sensor(tick: i64, sid: i64, reading: f64) -> Step {
    row(
        "sensors",
        tick,
        vec![Value::Int(tick), Value::Int(sid), Value::Float(reading)],
    )
}

fn punct(stream: &str, tick: i64) -> Step {
    Step::Punctuate {
        stream: stream.to_string(),
        ticks: tick,
    }
}

/// A small episode touching all three execution classes (shared grouped
/// filter, windowed aggregate, cross-stream join) with mid-schedule
/// punctuations so some windows release before any crash point.
fn base_episode(partitions: usize, columnar: bool, durability: Durability) -> Episode {
    Episode {
        seed: 0xD15C,
        policy: ShedPolicy::Block,
        batch_size: 2,
        input_queue: 16,
        flux_steps: 0,
        partitions,
        durability,
        columnar: Some(columnar),
        queries: vec![
            "SELECT sym, COUNT(*), SUM(price) FROM quotes GROUP BY sym \
             for (t = 1; t <= 8; t++) { WindowIs(quotes, t - 3, t); }"
                .into(),
            "SELECT day, sym, price FROM quotes WHERE price > 3.0".into(),
            "SELECT q.sym, s.sid FROM quotes q, sensors s WHERE q.day = s.at".into(),
        ],
        steps: vec![
            quote(1, "aapl", 4.5),
            sensor(1, 2, 0.5),
            quote(2, "ibm", 6.0),
            quote(3, "aapl", 2.5),
            punct("quotes", 3),
            Step::Settle,
            sensor(3, 1, 1.5),
            quote(4, "msft", 9.0),
            quote(5, "ibm", 1.5),
            Step::Wrapper { rounds: 2 },
            punct("quotes", 5),
            quote(6, "orcl", 3.5),
            punct("sensors", 6),
            Step::Settle,
        ],
    }
}

fn assert_clean(ep: &Episode, what: &str) {
    let failures = check_episode(ep);
    assert!(
        failures.is_empty(),
        "{what} failed:\n{}",
        failures.join("\n")
    );
}

/// Crash at every schedule position, across the engine matrix.
#[test]
fn crash_at_every_round_recovers_to_oracle() {
    for partitions in [1usize, 4] {
        for columnar in [false, true] {
            let base = base_episode(partitions, columnar, Durability::Buffered);
            for at in 0..=base.steps.len() {
                let mut ep = base.clone();
                ep.steps.insert(at, Step::Crash);
                assert_clean(
                    &ep,
                    &format!("crash at step {at} (partitions={partitions}, columnar={columnar})"),
                );
            }
        }
    }
}

/// Two crashes in one episode: recovery must compose with itself.
#[test]
fn double_crash_recovers_to_oracle() {
    for partitions in [1usize, 4] {
        let base = base_episode(partitions, true, Durability::Buffered);
        for (a, b) in [(2usize, 8usize), (5, 11), (0, 14)] {
            let mut ep = base.clone();
            // Insert the later position first so `a` stays valid.
            ep.steps.insert(b, Step::Crash);
            ep.steps.insert(a, Step::Crash);
            assert_clean(
                &ep,
                &format!("double crash at steps {a},{b} (partitions={partitions})"),
            );
        }
    }
}

/// Fsync mode is the same replay path plus a sync per commit; one sweep
/// column keeps it honest without doubling the matrix.
#[test]
fn fsync_crash_sweep_recovers_to_oracle() {
    let base = base_episode(1, true, Durability::Fsync);
    for at in [0, 4, 7, base.steps.len()] {
        let mut ep = base.clone();
        ep.steps.insert(at, Step::Crash);
        assert_clean(&ep, &format!("fsync crash at step {at}"));
    }
}

/// Durability without any crash must be invisible: the logged run's
/// output is byte-identical to the oracle exactly like an unlogged one
/// (and the episode file round-trips its durability line).
#[test]
fn durable_episode_without_crash_is_invisible() {
    for durability in [Durability::Off, Durability::Buffered, Durability::Fsync] {
        let ep = base_episode(1, true, durability);
        assert_clean(&ep, &format!("no-crash run under {}", durability.name()));
        let round_trip = Episode::parse(&ep.render()).unwrap();
        assert_eq!(round_trip, ep);
    }
}

/// A crash step in a non-durable episode is a driver error, reported as
/// a harness failure rather than a panic or a silent skip.
#[test]
fn crash_without_durability_is_rejected() {
    let mut ep = base_episode(1, true, Durability::Off);
    ep.steps.insert(3, Step::Crash);
    let failures = check_episode(&ep);
    assert!(
        failures.iter().any(|f| f.contains("durability is off")),
        "expected a durability rejection, got: {failures:?}"
    );
}
