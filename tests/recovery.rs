//! Crash-recovery sweep: kill and restart the server at every round of
//! a small fixed episode, under every (partitions × columnar) corner.
//!
//! Each probe inserts a `Step::Crash` at one schedule position and runs
//! the full `check_episode` loop: the episode executes twice
//! (byte-identical replay), the driver asserts Fjord conservation at
//! every quiesce point — including the post-recovery settle — and the
//! first run is diffed against the reference oracle. Crash placement is
//! therefore exhaustive over the schedule: before the first row, mid
//! window, between punctuation and settle, and after the final settle.
//! A double-crash probe checks that recovery composes (crash, recover,
//! crash again, recover again — still byte-identical to the oracle).

use sim::{check_episode, run_episode, Episode, Step};
use tcq::{Config, FaultKind, FaultPlan, HealthState, Server};
use tcq_common::{DataType, Durability, Field, OnStorageError, Schema, ShedPolicy, Value};

fn row(stream: &str, tick: i64, fields: Vec<Value>) -> Step {
    Step::Row {
        stream: stream.to_string(),
        ticks: tick,
        fields,
    }
}

fn quote(tick: i64, sym: &str, price: f64) -> Step {
    row(
        "quotes",
        tick,
        vec![Value::Int(tick), Value::str(sym), Value::Float(price)],
    )
}

fn sensor(tick: i64, sid: i64, reading: f64) -> Step {
    row(
        "sensors",
        tick,
        vec![Value::Int(tick), Value::Int(sid), Value::Float(reading)],
    )
}

fn punct(stream: &str, tick: i64) -> Step {
    Step::Punctuate {
        stream: stream.to_string(),
        ticks: tick,
    }
}

/// A small episode touching all three execution classes (shared grouped
/// filter, windowed aggregate, cross-stream join) with mid-schedule
/// punctuations so some windows release before any crash point.
fn base_episode(partitions: usize, columnar: bool, durability: Durability) -> Episode {
    Episode {
        seed: 0xD15C,
        policy: ShedPolicy::Block,
        batch_size: 2,
        input_queue: 16,
        flux_steps: 0,
        partitions,
        durability,
        columnar: Some(columnar),
        on_storage_error: None,
        consistency: None,
        queries: vec![
            "SELECT sym, COUNT(*), SUM(price) FROM quotes GROUP BY sym \
             for (t = 1; t <= 8; t++) { WindowIs(quotes, t - 3, t); }"
                .into(),
            "SELECT day, sym, price FROM quotes WHERE price > 3.0".into(),
            "SELECT q.sym, s.sid FROM quotes q, sensors s WHERE q.day = s.at".into(),
        ],
        steps: vec![
            quote(1, "aapl", 4.5),
            sensor(1, 2, 0.5),
            quote(2, "ibm", 6.0),
            quote(3, "aapl", 2.5),
            punct("quotes", 3),
            Step::Settle,
            sensor(3, 1, 1.5),
            quote(4, "msft", 9.0),
            quote(5, "ibm", 1.5),
            Step::Wrapper { rounds: 2 },
            punct("quotes", 5),
            quote(6, "orcl", 3.5),
            punct("sensors", 6),
            Step::Settle,
        ],
    }
}

fn assert_clean(ep: &Episode, what: &str) {
    let failures = check_episode(ep);
    assert!(
        failures.is_empty(),
        "{what} failed:\n{}",
        failures.join("\n")
    );
}

/// Crash at every schedule position, across the engine matrix.
#[test]
fn crash_at_every_round_recovers_to_oracle() {
    for partitions in [1usize, 4] {
        for columnar in [false, true] {
            let base = base_episode(partitions, columnar, Durability::Buffered);
            for at in 0..=base.steps.len() {
                let mut ep = base.clone();
                ep.steps.insert(at, Step::Crash);
                assert_clean(
                    &ep,
                    &format!("crash at step {at} (partitions={partitions}, columnar={columnar})"),
                );
            }
        }
    }
}

/// Two crashes in one episode: recovery must compose with itself.
#[test]
fn double_crash_recovers_to_oracle() {
    for partitions in [1usize, 4] {
        let base = base_episode(partitions, true, Durability::Buffered);
        for (a, b) in [(2usize, 8usize), (5, 11), (0, 14)] {
            let mut ep = base.clone();
            // Insert the later position first so `a` stays valid.
            ep.steps.insert(b, Step::Crash);
            ep.steps.insert(a, Step::Crash);
            assert_clean(
                &ep,
                &format!("double crash at steps {a},{b} (partitions={partitions})"),
            );
        }
    }
}

/// Fsync mode is the same replay path plus a sync per commit; one sweep
/// column keeps it honest without doubling the matrix.
#[test]
fn fsync_crash_sweep_recovers_to_oracle() {
    let base = base_episode(1, true, Durability::Fsync);
    for at in [0, 4, 7, base.steps.len()] {
        let mut ep = base.clone();
        ep.steps.insert(at, Step::Crash);
        assert_clean(&ep, &format!("fsync crash at step {at}"));
    }
}

/// Durability without any crash must be invisible: the logged run's
/// output is byte-identical to the oracle exactly like an unlogged one
/// (and the episode file round-trips its durability line).
#[test]
fn durable_episode_without_crash_is_invisible() {
    for durability in [Durability::Off, Durability::Buffered, Durability::Fsync] {
        let ep = base_episode(1, true, durability);
        assert_clean(&ep, &format!("no-crash run under {}", durability.name()));
        let round_trip = Episode::parse(&ep.render()).unwrap();
        assert_eq!(round_trip, ep);
    }
}

/// A crash step in a non-durable episode is a driver error, reported as
/// a harness failure rather than a panic or a silent skip.
#[test]
fn crash_without_durability_is_rejected() {
    let mut ep = base_episode(1, true, Durability::Off);
    ep.steps.insert(3, Step::Crash);
    let failures = check_episode(&ep);
    assert!(
        failures.iter().any(|f| f.contains("durability is off")),
        "expected a durability rejection, got: {failures:?}"
    );
}

// ---------------------------------------------------------------------
// Environmental faults: counted I/O failures against the WAL's storage
// layer. The oracle contract is heal-or-declare — either the engine
// absorbs the fault (seal + checkpoint) and stays byte-exact, or it
// degrades with every at-risk/refused row on a declared ledger.
// ---------------------------------------------------------------------

fn diskfault(kind: FaultKind, after: u32, count: u32) -> Step {
    Step::DiskFault { kind, after, count }
}

/// Every fault kind, injected at several schedule positions, must leave
/// the run clean: short counted faults heal through the fsyncgate path
/// (seal the poisoned segment, re-anchor on a verified checkpoint) and
/// the output stays byte-identical to the oracle.
#[test]
fn diskfault_of_every_kind_heals_or_declares() {
    let base = base_episode(1, true, Durability::Fsync);
    for kind in FaultKind::ALL {
        for at in [0usize, 5, 10, base.steps.len()] {
            let mut ep = base.clone();
            ep.steps.insert(at, diskfault(kind, 0, 1));
            assert_clean(&ep, &format!("{} fault at step {at}", kind.name()));
        }
    }
}

/// A persistent fault (count outlives the heal attempt) degrades the
/// engine; a later crash then loses exactly the declared at-risk rows.
/// The driver cross-checks its own push ledger against the engine's at
/// the crash, and the recovered incarnation must still replay to the
/// oracle byte for byte.
#[test]
fn persistent_diskfault_then_crash_conserves_declared_loss() {
    let base = base_episode(1, true, Durability::Fsync);
    for kind in [FaultKind::Eio, FaultKind::FsyncFail, FaultKind::Enospc] {
        let mut ep = base.clone();
        // Insert the later position first so the fault index stays valid.
        ep.steps.insert(10, Step::Crash);
        ep.steps.insert(3, diskfault(kind, 0, 64));
        assert_clean(&ep, &format!("persistent {} then crash", kind.name()));
    }
}

/// Under `onerror halt` the first storage failure sends the engine
/// straight to read-only: subsequent pushes are refused (and counted on
/// the rejected ledger), punctuations still close windows, and the
/// delivered output still matches the oracle over the admitted trace.
#[test]
fn halt_policy_goes_read_only_and_refuses_ingest() {
    let mut ep = base_episode(1, true, Durability::Fsync);
    ep.on_storage_error = Some(OnStorageError::Halt);
    ep.steps.insert(0, diskfault(FaultKind::Eio, 0, 1));
    assert_clean(&ep, "halt episode");
    let run = run_episode(&ep).expect("halt episode runs");
    assert_eq!(run.health.state, HealthState::ReadOnly);
    assert!(
        run.health.rejected_rows > 0,
        "pushes after the transition must be refused, got {:?}",
        run.health
    );
}

/// A disk-fault step in a non-durable episode targets a WAL that does
/// not exist; like `crash`, it is a harness error, never a silent skip.
#[test]
fn diskfault_without_durability_is_rejected() {
    let mut ep = base_episode(1, true, Durability::Off);
    ep.steps.insert(3, diskfault(FaultKind::Eio, 0, 1));
    let failures = check_episode(&ep);
    assert!(
        failures.iter().any(|f| f.contains("durability is off")),
        "expected a durability rejection, got: {failures:?}"
    );
}

// ---------------------------------------------------------------------
// Server-level fault anatomy: pin the exact degradation and recovery
// sequence for the two classic incidents — ENOSPC while writing a
// checkpoint, and a failed fsync at segment rotation.
// ---------------------------------------------------------------------

static FAULT_DIR_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tcq-recovery-{tag}-{}-{}",
        std::process::id(),
        FAULT_DIR_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic step-mode durable server over `dir` with one
/// integer-valued stream. `checkpoint_bytes: 1` makes every
/// punctuation a checkpoint; a tiny `wal_segment_bytes` makes every
/// commit a rotation.
fn fault_server(dir: &std::path::Path, checkpoint_bytes: u64, wal_segment_bytes: u64) -> Server {
    let server = Server::start(Config {
        step_mode: true,
        durability: Durability::Fsync,
        archive_dir: Some(dir.to_path_buf()),
        checkpoint_bytes,
        wal_segment_bytes,
        ..Config::default()
    })
    .expect("durable server starts");
    server
        .register_stream(
            "s",
            Schema::qualified("s", vec![Field::new("v", DataType::Int)]),
        )
        .expect("stream registers");
    server
}

fn archived_ints(server: &Server) -> Vec<i64> {
    server
        .archive_rows("s", i64::MIN, i64::MAX)
        .expect("archive scan")
        .iter()
        .map(|t| t.field(0).as_int().expect("int field"))
        .collect()
}

/// ENOSPC during a checkpoint: the punctuation's commit fails, and the
/// heal's replacement checkpoint hits the same full disk, so the engine
/// must degrade — and after a crash, recovery lands on the last
/// *verified* checkpoint plus the committed WAL tail, with the one
/// at-risk row as the only (declared) loss.
#[test]
fn enospc_during_checkpoint_recovers_to_last_verified_checkpoint() {
    let dir = scratch_dir("enospc");
    {
        let server = fault_server(&dir, 1, 4 << 20);
        for t in 1..=3i64 {
            server
                .push_at("s", vec![Value::Int(t * 10)], t)
                .expect("push");
        }
        server.sync();
        server.punctuate("s", 3).expect("punctuate"); // checkpoint #1, verified
        server.sync();
        assert_eq!(server.health(), HealthState::Healthy);
        for t in 4..=5i64 {
            server
                .push_at("s", vec![Value::Int(t * 10)], t)
                .expect("push");
        }
        server.sync();
        server
            .inject_storage_fault(FaultPlan {
                kind: FaultKind::Enospc,
                after: 0,
                count: u32::MAX,
            })
            .expect("arm fault");
        // Storage failure is not an ingest error: the call still
        // succeeds, the damage lands on the health ledger instead.
        server.punctuate("s", 5).expect("punctuate under ENOSPC");
        server.sync();
        assert_eq!(server.health(), HealthState::DurabilityDegraded);
        let report = server.health_report();
        assert!(report.storage_errors >= 1, "error counted: {report:?}");
        assert_eq!(report.at_risk_rows, 0, "no rows admitted since degrading");
        server
            .push_at("s", vec![Value::Int(60)], 6)
            .expect("degraded engine still admits");
        server.sync();
        assert_eq!(server.health_report().at_risk_rows, 1);
        drop(server); // crash: no shutdown, disk left as a kill would
    }
    let server = fault_server(&dir, 1, 4 << 20);
    server.recover().expect("recovery replays");
    server.sync();
    assert_eq!(
        server.health(),
        HealthState::Healthy,
        "a fresh incarnation starts healthy"
    );
    assert_eq!(
        archived_ints(&server),
        vec![10, 20, 30, 40, 50],
        "checkpoint #1 plus the committed tail; only the declared at-risk row is lost"
    );
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A failed fsync at segment rotation: the commit's own data sync
/// passes (`after: 1`), the rotation sync fails, and the heal's
/// checkpoint fsync fails too. The row whose commit triggered the
/// rotation was already durable in the abandoned segment, so recovery
/// replays it — no torn state, and recovering twice lands identically.
#[test]
fn fsync_failure_during_rotation_degrades_without_torn_state() {
    let dir = scratch_dir("rotate");
    {
        // One-byte segments: every commit fills the segment and rotates.
        let server = fault_server(&dir, 1, 1);
        for t in 1..=2i64 {
            server
                .push_at("s", vec![Value::Int(t * 10)], t)
                .expect("push");
        }
        server.sync();
        server.punctuate("s", 2).expect("punctuate"); // checkpoint #1
        server.sync();
        assert_eq!(server.health(), HealthState::Healthy);
        server
            .inject_storage_fault(FaultPlan {
                kind: FaultKind::FsyncFail,
                after: 1,
                count: u32::MAX,
            })
            .expect("arm fault");
        server
            .push_at("s", vec![Value::Int(30)], 3)
            .expect("push whose rotation sync fails");
        server.sync();
        assert_eq!(server.health(), HealthState::DurabilityDegraded);
        // The triggering row is declared at risk too — conservatively,
        // since only its *rotation* sync failed, not its data sync.
        assert_eq!(server.health_report().at_risk_rows, 1);
        server
            .push_at("s", vec![Value::Int(40)], 4)
            .expect("degraded engine still admits");
        server.sync();
        assert_eq!(server.health_report().at_risk_rows, 2);
        drop(server); // crash
    }
    for incarnation in 0..2 {
        let server = fault_server(&dir, 1, 1);
        server.recover().expect("recovery replays");
        server.sync();
        assert_eq!(server.health(), HealthState::Healthy);
        assert_eq!(
            archived_ints(&server),
            vec![10, 20, 30],
            "incarnation {incarnation}: checkpoint, plus the row synced before the failed rotation"
        );
        drop(server); // crash again: recovery must be idempotent
    }
    let _ = std::fs::remove_dir_all(&dir);
}
