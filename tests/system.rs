//! Cross-crate system tests: shared processing with dynamic query
//! add/remove, out-of-core archives serving historical windows, wrapper
//! sources, mixed workloads on one server.

use tcq::{Config, Server};
use tcq_common::{DataType, Field, Schema, Value};
use tcq_wrappers::{SensorGen, Source, StockTicker};

fn stock_schema() -> Schema {
    Schema::qualified(
        "closingstockprices",
        vec![
            Field::new("timestamp", DataType::Int),
            Field::new("stockSymbol", DataType::Str),
            Field::new("closingPrice", DataType::Float),
        ],
    )
}

/// Fjord conservation at a quiesce point: every EO input queue has
/// been drained, and its traffic counters balance exactly
/// (`enqueued == dequeued + depth` with `depth == 0`).
fn assert_conserved(s: &Server) {
    for (i, st) in s.eo_input_stats().iter().enumerate() {
        assert!(
            st.is_quiescent(),
            "eo{i}.input not conserved at quiesce: {st:?}"
        );
    }
}

fn sensor_schema() -> Schema {
    Schema::qualified(
        "sensors",
        vec![
            Field::new("sensor_id", DataType::Int),
            Field::new("reading", DataType::Float),
        ],
    )
}

/// CACQ behaviour at the server level: queries enter and leave while the
/// stream flows, and existing queries are unaffected.
#[test]
fn queries_add_and_remove_mid_stream() {
    let s = Server::start(Config::default()).unwrap();
    s.register_stream("ClosingStockPrices", stock_schema())
        .unwrap();
    let quote = |day: i64, price: f64| {
        s.push_at(
            "ClosingStockPrices",
            vec![Value::Int(day), Value::str("MSFT"), Value::Float(price)],
            day,
        )
        .unwrap();
    };

    let q1 = s
        .submit("SELECT closingPrice FROM ClosingStockPrices WHERE closingPrice > 10.0")
        .unwrap();
    quote(1, 20.0);
    s.sync();
    // A second query arrives mid-stream; it sees only future tuples.
    let q2 = s
        .submit("SELECT closingPrice FROM ClosingStockPrices WHERE closingPrice > 10.0")
        .unwrap();
    quote(2, 30.0);
    s.sync();
    // Remove q1 mid-stream; q2 keeps going.
    s.stop_query(q1.id).unwrap();
    quote(3, 40.0);
    s.sync();
    assert_conserved(&s);

    let q1_rows: Vec<f64> = q1
        .drain()
        .into_iter()
        .flat_map(|r| r.rows)
        .map(|t| t.field(0).as_float().unwrap())
        .collect();
    let q2_rows: Vec<f64> = q2
        .drain()
        .into_iter()
        .flat_map(|r| r.rows)
        .map(|t| t.field(0).as_float().unwrap())
        .collect();
    assert_eq!(q1_rows, vec![20.0, 30.0], "q1 missed nothing before stop");
    assert_eq!(q2_rows, vec![30.0, 40.0], "q2 starts at registration");
    assert!(q1.is_finished());
    s.shutdown();
}

/// Historical windows are answered from sealed, spooled archive
/// segments (out-of-core support): a tiny segment size forces data to
/// disk, and the snapshot query reads it back through the buffer pool.
#[test]
fn historical_window_reads_spooled_segments() {
    let config = Config {
        segment_tuples: 8, // force many tiny segments
        buffer_pool_segments: 2,
        ..Config::default()
    };
    let s = Server::start(config).unwrap();
    s.register_stream("ClosingStockPrices", stock_schema())
        .unwrap();
    for day in 1..=200 {
        s.push_at(
            "ClosingStockPrices",
            vec![
                Value::Int(day),
                Value::str("MSFT"),
                Value::Float(day as f64),
            ],
            day,
        )
        .unwrap();
    }
    s.sync();
    // Give the background spooler a moment; scans work either way
    // (resident copies serve unspooled segments).
    let h = s
        .submit(
            "SELECT COUNT(*) AS n, MAX(closingPrice) AS hi \
             FROM ClosingStockPrices \
             for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 50, 149); }",
        )
        .unwrap();
    s.sync();
    let sets = h.drain();
    assert_eq!(sets.len(), 1);
    assert_eq!(sets[0].rows[0].field(0), &Value::Int(100));
    assert_eq!(sets[0].rows[0].field(1), &Value::Float(149.0));
    s.shutdown();
}

/// Several unrelated streams and query classes coexist on one server.
#[test]
fn mixed_streams_and_query_classes() {
    let s = Server::start(Config::default()).unwrap();
    s.register_stream("ClosingStockPrices", stock_schema())
        .unwrap();
    s.register_stream("Sensors", sensor_schema()).unwrap();

    let stocks = s
        .submit("SELECT closingPrice FROM ClosingStockPrices WHERE closingPrice > 100.0")
        .unwrap();
    let sensors = s
        .submit(
            "SELECT COUNT(*) AS n FROM Sensors \
             for (t = 10; t <= 20; t += 10) { WindowIs(Sensors, t - 9, t); }",
        )
        .unwrap();

    for day in 1..=5 {
        s.push_at(
            "ClosingStockPrices",
            vec![
                Value::Int(day),
                Value::str("MSFT"),
                Value::Float(100.0 + day as f64),
            ],
            day,
        )
        .unwrap();
    }
    let mut gen = SensorGen::new(3, 4);
    for t in gen.poll(25) {
        s.push_at("Sensors", t.fields().to_vec(), t.ts().ticks())
            .unwrap();
    }
    s.punctuate("Sensors", 25).unwrap();
    s.sync();
    assert_conserved(&s);

    let stock_count: usize = stocks.drain().iter().map(|r| r.rows.len()).sum();
    assert_eq!(stock_count, 5);
    let sensor_sets = sensors.drain();
    assert_eq!(sensor_sets.len(), 2, "windows [1,10] and [11,20]");
    for rs in &sensor_sets {
        assert_eq!(rs.rows[0].field(0), &Value::Int(10));
    }
    s.shutdown();
}

/// The Wrapper thread hosts several sources concurrently and
/// auto-punctuates streams whose sources finish, releasing final
/// windows without explicit client punctuation.
#[test]
fn wrapper_auto_punctuates_on_source_exhaustion() {
    // Step mode: `drain_sources` advances the Wrapper in virtual rounds,
    // so the exhaustion -> auto-punctuation path is deterministic.
    let s = Server::start(Config {
        step_mode: true,
        ..Config::default()
    })
    .unwrap();
    s.register_stream("ClosingStockPrices", stock_schema())
        .unwrap();
    let h = s
        .submit(
            "SELECT COUNT(*) AS n FROM ClosingStockPrices \
             for (t = 10; t <= 30; t += 10) { WindowIs(ClosingStockPrices, t - 9, t); }",
        )
        .unwrap();
    s.attach_source(
        "ClosingStockPrices",
        Box::new(StockTicker::with_symbols(1, vec!["MSFT"], Some(30))),
    )
    .unwrap();
    assert!(s.drain_sources(std::time::Duration::from_secs(10)));
    s.sync();
    assert_conserved(&s);
    let sets = h.drain();
    assert_eq!(sets.len(), 3, "all three windows released, incl. the last");
    for rs in &sets {
        assert_eq!(rs.rows[0].field(0), &Value::Int(10));
    }
    s.shutdown();
}

/// Many clients, one stream: the shared grouped-filter path scales the
/// delivered results with query count, not the evaluation work.
#[test]
fn shared_selection_fanout_is_correct() {
    let s = Server::start(Config::default()).unwrap();
    s.register_stream("ClosingStockPrices", stock_schema())
        .unwrap();
    let handles: Vec<_> = (0..50)
        .map(|i| {
            s.submit(&format!(
                "SELECT closingPrice FROM ClosingStockPrices WHERE closingPrice > {}.0",
                i * 2
            ))
            .unwrap()
        })
        .collect();
    for day in 1..=10 {
        s.push_at(
            "ClosingStockPrices",
            vec![
                Value::Int(day),
                Value::str("MSFT"),
                Value::Float((day * 10) as f64),
            ],
            day,
        )
        .unwrap();
    }
    s.sync();
    assert_conserved(&s);
    for (i, h) in handles.iter().enumerate() {
        let got: usize = h.drain().iter().map(|r| r.rows.len()).sum();
        let expected = (1..=10)
            .filter(|&d| (d * 10) as f64 > (i * 2) as f64)
            .count();
        assert_eq!(got, expected, "query {i}");
    }
    s.shutdown();
}

/// A PSoup-style client: register standing interest, disconnect, and
/// retrieve materialized answers later (using the dedicated engine).
#[test]
fn psoup_disconnected_retrieval() {
    use tcq_common::{CmpOp, Timestamp, Tuple};
    use tcq_psoup::{PSoup, PsoupQuery};

    let mut p = PSoup::new();
    let q = p
        .register_query(PsoupQuery {
            stream: 0,
            predicates: vec![(1, CmpOp::Gt, Value::Float(50.0))],
            window_width: 20,
        })
        .unwrap();
    // Client disconnects; data keeps flowing.
    for i in 1..=100 {
        p.push(
            0,
            Tuple::at_seq(vec![Value::str("MSFT"), Value::Float((i % 80) as f64)], i),
        );
    }
    // Client reconnects and asks for the current answer.
    let answer = p.retrieve(q, Timestamp::logical(100)).unwrap();
    let expected = (81..=100).filter(|&i| (i % 80) as f64 > 50.0).count();
    assert_eq!(answer.len(), expected);
    // And the recompute baseline agrees.
    let recomputed = p.retrieve_recompute(q, Timestamp::logical(100)).unwrap();
    assert_eq!(answer, recomputed);
}

/// Queries spanning EOs and footprints deliver to the right handles even
/// with several executor threads.
#[test]
fn multiple_executor_threads() {
    let config = Config {
        executor_threads: 4,
        ..Config::default()
    };
    let s = Server::start(config).unwrap();
    s.register_stream("ClosingStockPrices", stock_schema())
        .unwrap();
    s.register_stream("Sensors", sensor_schema()).unwrap();
    let qs: Vec<_> = (0..8)
        .map(|i| {
            if i % 2 == 0 {
                s.submit("SELECT closingPrice FROM ClosingStockPrices WHERE closingPrice > 0.0")
                    .unwrap()
            } else {
                s.submit("SELECT reading FROM Sensors WHERE reading > -100.0")
                    .unwrap()
            }
        })
        .collect();
    for day in 1..=20 {
        s.push_at(
            "ClosingStockPrices",
            vec![Value::Int(day), Value::str("A"), Value::Float(1.0)],
            day,
        )
        .unwrap();
        s.push_at("Sensors", vec![Value::Int(day), Value::Float(20.0)], day)
            .unwrap();
    }
    s.sync();
    assert_conserved(&s);
    for (i, h) in qs.iter().enumerate() {
        let got: usize = h.drain().iter().map(|r| r.rows.len()).sum();
        assert_eq!(got, 20, "query {i} sees every tuple of its stream");
    }
    s.shutdown();
}

/// `SELECT DISTINCT` works in all three execution classes.
#[test]
fn select_distinct_everywhere() {
    let s = Server::start(Config::default()).unwrap();
    s.register_stream("ClosingStockPrices", stock_schema())
        .unwrap();
    // Streamed (shared class) distinct.
    let streamed = s
        .submit(
            "SELECT DISTINCT stockSymbol FROM ClosingStockPrices \
             WHERE closingPrice > 0.0",
        )
        .unwrap();
    // Windowed distinct: per-window sets are deduplicated independently.
    let windowed = s
        .submit(
            "SELECT DISTINCT stockSymbol FROM ClosingStockPrices \
             for (t = 4; t <= 8; t += 4) { WindowIs(ClosingStockPrices, t - 3, t); }",
        )
        .unwrap();
    for day in 1..=8i64 {
        for sym in ["MSFT", "IBM", "MSFT"] {
            s.push_at(
                "ClosingStockPrices",
                vec![Value::Int(day), Value::str(sym), Value::Float(1.0)],
                day,
            )
            .unwrap();
        }
    }
    s.punctuate("ClosingStockPrices", 8).unwrap();
    s.sync();
    assert_conserved(&s);
    let streamed_rows: Vec<String> = streamed
        .drain()
        .into_iter()
        .flat_map(|r| r.rows)
        .map(|t| t.field(0).as_str().unwrap().to_string())
        .collect();
    assert_eq!(
        streamed_rows,
        vec!["MSFT".to_string(), "IBM".to_string()],
        "each symbol delivered once over the whole stream"
    );
    let sets = windowed.drain();
    assert_eq!(sets.len(), 2);
    for rs in &sets {
        assert_eq!(rs.rows.len(), 2, "both symbols, each once, per window");
    }
    s.shutdown();
}

/// ORDER BY sorts each windowed result set; unwindowed queries reject it.
#[test]
fn order_by_windowed_sets() {
    let s = Server::start(Config::default()).unwrap();
    s.register_stream("ClosingStockPrices", stock_schema())
        .unwrap();
    let h = s
        .submit(
            "SELECT stockSymbol, closingPrice FROM ClosingStockPrices \
             ORDER BY closingPrice DESC, stockSymbol \
             for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 3); }",
        )
        .unwrap();
    for (day, sym, price) in [
        (1i64, "MSFT", 50.0),
        (2, "IBM", 90.0),
        (3, "ORCL", 70.0),
        (3, "AAPL", 90.0),
    ] {
        s.push_at(
            "ClosingStockPrices",
            vec![Value::Int(day), Value::str(sym), Value::Float(price)],
            day,
        )
        .unwrap();
    }
    s.punctuate("ClosingStockPrices", 3).unwrap();
    s.sync();
    let sets = h.drain();
    assert_eq!(sets.len(), 1);
    let names: Vec<&str> = sets[0]
        .rows
        .iter()
        .map(|r| r.field(0).as_str().unwrap())
        .collect();
    // 90.0 ties break by symbol ascending: AAPL before IBM.
    assert_eq!(names, vec!["AAPL", "IBM", "ORCL", "MSFT"]);
    // Aggregated + ordered by output name.
    let agg = s
        .submit(
            "SELECT stockSymbol, COUNT(*) AS n FROM ClosingStockPrices \
             GROUP BY stockSymbol ORDER BY n DESC, 1 \
             for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 3); }",
        )
        .unwrap();
    s.sync();
    let asets = agg.drain();
    assert_eq!(asets.len(), 1);
    assert_eq!(asets[0].rows.len(), 4);
    // Unwindowed ORDER BY rejected.
    assert!(s
        .submit("SELECT closingPrice FROM ClosingStockPrices ORDER BY 1")
        .is_err());
    // Bad ORDER BY targets rejected.
    assert!(s
        .submit(
            "SELECT closingPrice FROM ClosingStockPrices ORDER BY nosuch \
             for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 3); }"
        )
        .is_err());
    s.shutdown();
}

/// The introspection streams are queryable through the ordinary query
/// path: a standing CQ-SQL query over `tcq$queues` receives live rows
/// (stamped, archived, fanned out like any stream) whose readings match
/// the `Server::metrics()` snapshot.
#[test]
fn introspection_streams_queryable_live() {
    let s = Server::start(Config::default()).unwrap();
    s.register_stream("ClosingStockPrices", stock_schema())
        .unwrap();
    let queues = s
        .submit("SELECT * FROM tcq$queues WHERE depth >= 0")
        .unwrap();
    let ops = s
        .submit("SELECT name, metric, value FROM tcq$operators WHERE value >= 0")
        .unwrap();
    // Real traffic first, so the queue counters have something to say.
    let trades = s
        .submit("SELECT closingPrice FROM ClosingStockPrices WHERE closingPrice > 0.0")
        .unwrap();
    for day in 1..=40 {
        s.push_at(
            "ClosingStockPrices",
            vec![Value::Int(day), Value::str("MSFT"), Value::Float(1.0)],
            day,
        )
        .unwrap();
    }
    s.sync();
    s.emit_introspection();
    s.sync();

    let rows: Vec<_> = queues.drain().into_iter().flat_map(|r| r.rows).collect();
    // One EO input queue per worker: `partitions` exchange workers when
    // partitioning is on (e.g. the TCQ_PARTITIONS=4 CI shard), else the
    // classic `executor_threads` pool.
    let cfg = Config::default();
    let n_eos = if cfg.partitions > 1 {
        cfg.partitions
    } else {
        cfg.executor_threads
    };
    assert_eq!(rows.len(), n_eos, "one row per EO input queue");
    let snap = s.metrics().unwrap().snapshot();
    for row in &rows {
        let name = row.field(0).as_str().unwrap().to_string();
        assert!(name.starts_with("eo") && name.ends_with(".input"), "{name}");
        let depth = row.field(1).as_int().unwrap();
        let enqueued = row.field(3).as_int().unwrap();
        let dequeued = row.field(4).as_int().unwrap();
        assert_eq!(enqueued, dequeued + depth, "conservation in the row");
        // The registry probe sees the same queue (counters only grow, so
        // the later snapshot can only be >=).
        assert!(snap.value("queues", &name, "enqueued").unwrap() >= enqueued);
    }
    assert!(
        rows.iter().any(|r| r.field(3).as_int().unwrap() > 0),
        "tuples flowed through at least one EO input"
    );
    let op_rows: Vec<_> = ops.drain().into_iter().flat_map(|r| r.rows).collect();
    assert!(
        op_rows
            .iter()
            .any(|r| r.field(0).as_str().unwrap().starts_with("cacq.")),
        "operator rows include the shared grouped-filter engine"
    );
    let delivered: usize = trades.drain().iter().map(|r| r.rows.len()).sum();
    assert_eq!(delivered, 40);
    s.shutdown();
}

/// FjordStats conservation at quiesce: after `sync` drains every EO
/// input, each queue's traffic counters balance exactly
/// (`enqueued == dequeued + depth`, with depth 0).
#[test]
fn fjord_counters_conserved_at_quiesce() {
    let s = Server::start(Config {
        batch_size: 7, // exercise the batch endpoints too
        ..Config::default()
    })
    .unwrap();
    s.register_stream("ClosingStockPrices", stock_schema())
        .unwrap();
    let h = s
        .submit("SELECT closingPrice FROM ClosingStockPrices WHERE closingPrice > 5.0")
        .unwrap();
    for day in 1..=500 {
        s.push_at(
            "ClosingStockPrices",
            vec![
                Value::Int(day),
                Value::str("MSFT"),
                Value::Float(day as f64),
            ],
            day,
        )
        .unwrap();
    }
    s.sync();
    let stats = s.eo_input_stats();
    assert!(
        stats.iter().any(|st| st.enqueued > 0),
        "traffic reached the EO inputs"
    );
    for (i, st) in stats.iter().enumerate() {
        assert_eq!(
            st.enqueued, st.dequeued,
            "eo{i}.input drained at quiesce: {st:?}"
        );
    }
    // The metrics probes read the same counters under the buffer lock,
    // so the snapshot obeys the same invariant including live depth.
    let snap = s.metrics().unwrap().snapshot();
    for i in 0..stats.len() {
        let inst = format!("eo{i}.input");
        let enq = snap.value("queues", &inst, "enqueued").unwrap();
        let deq = snap.value("queues", &inst, "dequeued").unwrap();
        let depth = snap.value("queues", &inst, "depth").unwrap();
        assert_eq!(enq, deq + depth, "{inst}");
    }
    let got: usize = h.drain().iter().map(|r| r.rows.len()).sum();
    assert_eq!(got, 495);
    s.shutdown();
}

// ------------------------------------------------ partitioned parallelism --

/// Conservation across the Flux exchange at a quiesce point: per
/// partition `routed == processed + evicted`, and nothing in flight.
fn assert_partitions_conserved(s: &Server) {
    for (i, (routed, processed, evicted)) in s.partition_stats().iter().enumerate() {
        assert_eq!(
            *routed,
            processed + evicted,
            "partition {i} share conservation at quiesce"
        );
    }
}

/// One workload, two stream classes (shared-style selection and a bare
/// tap), run to quiesce; returns every query's drained result sets.
fn partitioned_workload(partitions: usize) -> Vec<Vec<tcq::ResultSet>> {
    let s = Server::start(Config {
        partitions,
        ..Config::default()
    })
    .unwrap();
    s.register_stream("ClosingStockPrices", stock_schema())
        .unwrap();
    let selection = s
        .submit("SELECT closingPrice FROM ClosingStockPrices WHERE closingPrice > 55.0")
        .unwrap();
    let tap = s
        .submit("SELECT stockSymbol, closingPrice FROM ClosingStockPrices")
        .unwrap();
    let windowed = s
        .submit(
            "SELECT COUNT(*) AS n FROM ClosingStockPrices \
             for (t = 20; t <= 60; t += 20) { WindowIs(ClosingStockPrices, t - 19, t); }",
        )
        .unwrap();
    for day in 1..=60i64 {
        for (sym, price) in [("MSFT", 50.0 + day as f64), ("IBM", 90.0 - day as f64)] {
            s.push_at(
                "ClosingStockPrices",
                vec![Value::Int(day), Value::str(sym), Value::Float(price)],
                day,
            )
            .unwrap();
        }
    }
    s.punctuate("ClosingStockPrices", 60).unwrap();
    s.sync();
    assert_conserved(&s);
    s.assert_quiescent();
    if partitions > 1 {
        assert_partitions_conserved(&s);
        let total: u64 = s.partition_stats().iter().map(|(r, _, _)| r).sum();
        assert_eq!(total, 120, "every admitted tuple routed exactly once");
    }
    let out = vec![selection.drain(), tap.drain(), windowed.drain()];
    s.shutdown();
    out
}

/// The tentpole identity: sharding the pipeline across 4 EO workers
/// through the Flux exchange leaves client-visible results — streamed
/// rows, their order, and window-release sets — byte-identical to the
/// single-partition run.
#[test]
fn partitioned_output_identical_to_single_partition() {
    let single = partitioned_workload(1);
    let sharded = partitioned_workload(4);
    assert_eq!(
        single, sharded,
        "partitions: 4 must be invisible to the client"
    );
}

/// A two-stream streaming equi-join pins both inputs on the join key so
/// matches co-locate; results match the single-partition run exactly.
#[test]
fn partitioned_join_colocates_and_matches() {
    let run = |partitions: usize| {
        let s = Server::start(Config {
            partitions,
            ..Config::default()
        })
        .unwrap();
        s.register_stream(
            "L",
            Schema::qualified(
                "l",
                vec![
                    Field::new("k", DataType::Int),
                    Field::new("v", DataType::Int),
                ],
            ),
        )
        .unwrap();
        s.register_stream(
            "R",
            Schema::qualified(
                "r",
                vec![
                    Field::new("k", DataType::Int),
                    Field::new("w", DataType::Int),
                ],
            ),
        )
        .unwrap();
        let h = s
            .submit("SELECT l.v, r.w FROM L l, R r WHERE l.k = r.k")
            .unwrap();
        for i in 1..=80i64 {
            s.push_at("L", vec![Value::Int(i % 7), Value::Int(i)], i)
                .unwrap();
            s.push_at("R", vec![Value::Int(i % 7), Value::Int(i * 100)], i)
                .unwrap();
        }
        s.sync();
        s.assert_quiescent();
        if partitions > 1 {
            assert_partitions_conserved(&s);
        }
        let out = h.drain();
        s.shutdown();
        out
    };
    let single = run(1);
    let sharded = run(4);
    let rows: usize = single.iter().map(|r| r.rows.len()).sum();
    assert!(rows > 80, "the join actually produced matches: {rows}");
    assert_eq!(single, sharded, "co-located join output byte-identical");
}

/// Step mode composes with partitions: the deterministic round-robin
/// drain yields the same answers at 1 and 4 partitions, twice over.
#[test]
fn partitioned_step_mode_is_deterministic() {
    let run = |partitions: usize| {
        let s = Server::start(Config {
            step_mode: true,
            partitions,
            ..Config::default()
        })
        .unwrap();
        s.register_stream("ClosingStockPrices", stock_schema())
            .unwrap();
        let h = s
            .submit("SELECT closingPrice FROM ClosingStockPrices WHERE closingPrice > 10.0")
            .unwrap();
        for day in 1..=50i64 {
            s.push_at(
                "ClosingStockPrices",
                vec![
                    Value::Int(day),
                    Value::str("MSFT"),
                    Value::Float(day as f64),
                ],
                day,
            )
            .unwrap();
        }
        s.sync();
        s.assert_quiescent();
        let out: Vec<String> = h
            .drain()
            .into_iter()
            .flat_map(|r| r.rows)
            .map(|t| format!("{t}"))
            .collect();
        s.shutdown();
        out
    };
    let p1 = run(1);
    assert_eq!(p1.len(), 40);
    assert_eq!(p1, run(4), "partitioned step mode matches single");
    assert_eq!(run(4), run(4), "and replays identically");
}

/// The exchange's per-partition gauges and skew histogram surface in
/// the registry and on the `tcq$flux` introspection stream.
#[test]
fn partition_metrics_reach_tcq_flux() {
    let s = Server::start(Config {
        partitions: 4,
        ..Config::default()
    })
    .unwrap();
    s.register_stream("ClosingStockPrices", stock_schema())
        .unwrap();
    let flux_q = s
        .submit("SELECT name, metric, value FROM tcq$flux")
        .unwrap();
    for day in 1..=40i64 {
        s.push_at(
            "ClosingStockPrices",
            vec![
                Value::Int(day),
                Value::str("MSFT"),
                Value::Float(day as f64),
            ],
            day,
        )
        .unwrap();
    }
    s.sync();
    s.emit_introspection();
    s.sync();
    let snap = s.metrics().unwrap().snapshot();
    // tcq$* rows themselves route through the exchange, so the gauge
    // total covers the 40 stream tuples plus the introspection rows.
    let routed: i64 = (0..4)
        .map(|i| {
            snap.value("flux", &format!("exchange.p{i}"), "routed")
                .unwrap()
        })
        .sum();
    assert!(routed >= 40, "per-partition routed gauges cover the stream");
    assert!(
        snap.value("flux", "exchange", "partition_skew").unwrap() >= 1,
        "skew histogram records observations"
    );
    let rows: Vec<_> = flux_q.drain().into_iter().flat_map(|r| r.rows).collect();
    assert!(
        rows.iter().any(|r| {
            r.field(0).as_str() == Some("flux.exchange.p0")
                && r.field(1).as_str() == Some("processed")
        }),
        "tcq$flux carries per-partition exchange rows"
    );
    s.shutdown();
}

/// `Server::explain` describes plans without registering queries.
#[test]
fn explain_describes_without_registering() {
    let s = Server::start(Config::default()).unwrap();
    s.register_stream("ClosingStockPrices", stock_schema())
        .unwrap();
    let text = s
        .explain(
            "SELECT MAX(closingPrice) AS hi FROM ClosingStockPrices \
             for (t = 5; t <= 9; t++) { WindowIs(ClosingStockPrices, t - 4, t); }",
        )
        .unwrap();
    assert!(text.contains("class: windowed"), "{text}");
    assert!(text.contains("Sliding"), "{text}");
    assert!(text.contains("MAX"), "{text}");
    // Invalid queries still error through explain.
    assert!(s
        .explain("SELECT MAX(closingPrice) FROM ClosingStockPrices")
        .is_err());
    s.shutdown();
}
