//! Overload-triage and fault-containment system tests: shed policies at
//! the Wrapper→Fjord boundary, spill-to-archive with re-ingestion,
//! panic quarantine in the executor, and source retry/backoff.
//!
//! The load recipe runs in `Config::step_mode`: the single EO drains
//! only when explicitly stepped (or when a full queue forces an inline
//! drain), so pushing into the tiny input queue crosses the high
//! watermark after a fixed number of pushes — the policy under test
//! engages deterministically, with no wall-clock race against a slow
//! executor thread.

use std::time::Duration;

use tcq::{Config, QueryHandle, Server, ShedPolicy};
use tcq_common::{DataType, Field, Schema, Value};

fn s_schema() -> Schema {
    Schema::qualified(
        "s",
        vec![
            Field::new("seq", DataType::Int),
            Field::new("val", DataType::Int),
        ],
    )
}

/// A stepped single EO behind an 8-slot queue: high watermark 7, low 2.
fn overload_config(policy: ShedPolicy) -> Config {
    Config {
        step_mode: true,
        executor_threads: 1,
        input_queue: 8,
        batch_size: 1,
        result_buffer: 1 << 14,
        shed_policy: policy,
        ..Config::default()
    }
}

/// Fjord conservation at a quiesce point: every EO input queue has been
/// drained, and its traffic counters balance exactly.
fn assert_conserved(s: &Server) {
    for (i, st) in s.eo_input_stats().iter().enumerate() {
        assert!(
            st.is_quiescent(),
            "eo{i}.input: enqueued == dequeued + depth with depth 0 at quiesce: {st:?}"
        );
    }
}

fn start(policy: ShedPolicy) -> Server {
    let s = Server::start(overload_config(policy)).unwrap();
    s.register_stream("S", s_schema()).unwrap();
    s
}

fn push_seq(s: &Server, i: i64) {
    s.push_at("S", vec![Value::Int(i), Value::Int(i * 2)], i)
        .unwrap();
}

fn tap(s: &Server) -> QueryHandle {
    // Always-true single-column predicate: folds into the shared CACQ
    // class, so every admitted tuple is delivered exactly once.
    s.submit("SELECT seq FROM S WHERE seq >= 0").unwrap()
}

fn seqs(h: &QueryHandle) -> Vec<i64> {
    h.drain()
        .into_iter()
        .flat_map(|r| r.rows)
        .map(|t| t.field(0).as_int().unwrap())
        .collect()
}

/// Advance virtual time until every pending spill episode of `stream`
/// has re-ingested: each Wrapper round re-ingests idle spill batches,
/// and the bound is in rounds, not wall-clock seconds.
fn await_spill_drained(s: &Server, stream: &str) {
    for _ in 0..10_000 {
        if s.shed_stats(stream).unwrap().spill_pending == 0 {
            return;
        }
        s.sim_step_wrapper();
        s.sync();
    }
    panic!(
        "spill never re-ingested: {:?}",
        s.shed_stats(stream).unwrap()
    );
}

const N: i64 = 400;

#[test]
fn block_policy_loses_nothing() {
    let s = start(ShedPolicy::Block);
    let h = tap(&s);
    for i in 1..=N {
        push_seq(&s, i);
    }
    s.sync();
    assert_conserved(&s);
    let st = s.shed_stats("S").unwrap();
    assert_eq!(st.shed, 0, "backpressure never sheds");
    assert_eq!(st.spilled, 0);
    assert_eq!(seqs(&h).len(), N as usize);
    s.shutdown();
}

#[test]
fn drop_newest_conserves_and_sheds() {
    let s = start(ShedPolicy::DropNewest);
    let h = tap(&s);
    for i in 1..=N {
        push_seq(&s, i);
    }
    s.sync();
    assert_conserved(&s);
    let st = s.shed_stats("S").unwrap();
    let delivered = seqs(&h);
    assert!(st.shed > 0, "overload must engage: {st:?}");
    assert_eq!(
        delivered.len() as u64 + st.shed,
        N as u64,
        "every tuple delivered or counted shed"
    );
    s.shutdown();
}

#[test]
fn drop_oldest_conserves_and_favors_fresh_data() {
    let s = start(ShedPolicy::DropOldest);
    let h = tap(&s);
    for i in 1..=N {
        push_seq(&s, i);
    }
    s.sync();
    assert_conserved(&s);
    let st = s.shed_stats("S").unwrap();
    let delivered = seqs(&h);
    assert!(st.shed > 0, "overload must engage: {st:?}");
    assert_eq!(delivered.len() as u64 + st.shed, N as u64);
    // Freshest-data-wins: the newest tuple is always admitted.
    assert_eq!(delivered.last().copied(), Some(N));
    s.shutdown();
}

#[test]
fn sample_conserves_and_sheds() {
    let s = start(ShedPolicy::Sample { rate: 0.3 });
    let h = tap(&s);
    for i in 1..=N {
        push_seq(&s, i);
    }
    s.sync();
    assert_conserved(&s);
    let st = s.shed_stats("S").unwrap();
    let delivered = seqs(&h);
    assert!(st.shed > 0, "overload must engage: {st:?}");
    assert_eq!(delivered.len() as u64 + st.shed, N as u64);
    s.shutdown();
}

#[test]
fn spill_delivers_everything_in_order_after_load_subsides() {
    let s = start(ShedPolicy::Spill);
    let h = tap(&s);
    for i in 1..=N {
        push_seq(&s, i);
    }
    await_spill_drained(&s, "S");
    s.sync();
    assert_conserved(&s);
    let st = s.shed_stats("S").unwrap();
    assert!(st.spilled > 0, "overload must engage: {st:?}");
    assert_eq!(st.reingested, st.spilled);
    assert_eq!(st.shed, 0, "spill trades latency, not completeness");
    let delivered = seqs(&h);
    assert_eq!(delivered.len(), N as usize, "100% delivery after subside");
    assert!(
        delivered.windows(2).all(|w| w[0] < w[1]),
        "re-ingestion preserves arrival order"
    );
    s.shutdown();
}

#[test]
fn shed_policy_round_trips_catalog_and_stats() {
    let s = start(ShedPolicy::Block);
    assert!(s.shed_stats("S").unwrap().policy.is_block());
    s.set_shed_policy("S", ShedPolicy::Sample { rate: 0.5 })
        .unwrap();
    assert_eq!(
        s.shed_stats("S").unwrap().policy,
        ShedPolicy::Sample { rate: 0.5 }
    );
    assert_eq!(
        s.catalog().lookup("s").unwrap().shed_policy,
        Some(ShedPolicy::Sample { rate: 0.5 }),
        "runtime policy recorded in the catalog"
    );
    assert!(s.set_shed_policy("nosuch", ShedPolicy::Spill).is_err());
    assert!(s.shed_stats("nosuch").is_err());
    s.shutdown();
}

/// The `tcq$shed` introspection stream is queryable live: a standing
/// CQ-SQL query sees the overload counters of a shedding stream.
#[test]
fn shed_counters_queryable_via_tcq_shed() {
    let s = start(ShedPolicy::DropNewest);
    let shed_q = s.submit("SELECT * FROM tcq$shed").unwrap();
    let h = tap(&s);
    for i in 1..=N {
        push_seq(&s, i);
    }
    s.sync();
    let st = s.shed_stats("S").unwrap();
    assert!(st.shed > 0, "overload must engage: {st:?}");
    s.emit_introspection();
    s.sync();
    assert_conserved(&s);
    let rows: Vec<_> = shed_q.drain().into_iter().flat_map(|r| r.rows).collect();
    let shed_row = rows
        .iter()
        .find(|r| r.field(0).as_str() == Some("s") && r.field(2).as_str() == Some("shed"))
        .expect("a shed row for stream s");
    assert_eq!(shed_row.field(1).as_str(), Some("drop_newest"));
    assert!(shed_row.field(3).as_int().unwrap() > 0);
    // The registry probe publishes the same counters.
    let snap = s.metrics().unwrap().snapshot();
    assert_eq!(snap.value("shed", "s", "shed"), Some(st.shed as i64));
    // Results keep flowing for the data query too.
    assert!(!seqs(&h).is_empty());
    s.shutdown();
}

// ------------------------------------------------- source retry/backoff --

#[test]
fn flaky_source_retries_until_everything_arrives() {
    use tcq_common::Tuple;
    use tcq_wrappers::{FlakySource, IterSource};

    let s = Server::start(Config {
        step_mode: true,
        executor_threads: 1,
        ..Config::default()
    })
    .unwrap();
    s.register_stream("S", s_schema()).unwrap();
    let h = tap(&s);
    let tuples: Vec<Tuple> = (1..=200)
        .map(|i| Tuple::at_seq(vec![Value::Int(i), Value::Int(i * 2)], i))
        .collect();
    // Seed 3's first f64 roll is 0.113 < 0.4, its second 0.7: exactly one
    // transient fault, then the inner source drains in a single poll.
    let flaky = FlakySource::new(IterSource::new("gen", tuples.into_iter()), 3, 0.4);
    s.attach_source("S", Box::new(flaky)).unwrap();
    // 30k virtual rounds (step mode counts the timeout in Wrapper
    // rounds), far beyond the backoff ladder for one fault.
    assert!(s.drain_sources(Duration::from_secs(30)));
    let delivered = seqs(&h);
    assert_eq!(delivered.len(), 200, "transient faults lose nothing");
    assert!(
        delivered.windows(2).all(|w| w[0] < w[1]),
        "retries do not reorder"
    );
    let snap = s.metrics().unwrap().snapshot();
    assert_eq!(
        snap.value("wrapper", "flaky(gen)", "retries"),
        Some(1),
        "the wrapper retried the injected fault"
    );
    assert!(snap.value("wrapper", "flaky(gen)", "give_ups").is_none());
    s.shutdown();
}

/// A source that only ever reports transient faults.
struct AlwaysFailing;

impl tcq_wrappers::Source for AlwaysFailing {
    fn poll(&mut self, _max: usize) -> Vec<tcq_common::Tuple> {
        Vec::new()
    }
    fn try_poll(
        &mut self,
        _max: usize,
    ) -> std::result::Result<Vec<tcq_common::Tuple>, tcq_wrappers::SourceError> {
        Err(tcq_wrappers::SourceError::Transient("down".into()))
    }
    fn is_exhausted(&self) -> bool {
        false
    }
    fn name(&self) -> &str {
        "always_failing"
    }
}

#[test]
fn wrapper_gives_up_after_retry_budget() {
    let s = Server::start(Config {
        step_mode: true,
        executor_threads: 1,
        source_retry_max: 3,
        ..Config::default()
    })
    .unwrap();
    s.register_stream("S", s_schema()).unwrap();
    s.attach_source("S", Box::new(AlwaysFailing)).unwrap();
    // The give-up detaches the source (and punctuates), so the drain
    // completes rather than hanging on a permanently-down source.
    assert!(s.drain_sources(Duration::from_secs(30)));
    let snap = s.metrics().unwrap().snapshot();
    assert_eq!(snap.value("wrapper", "always_failing", "give_ups"), Some(1));
    assert_eq!(
        snap.value("wrapper", "always_failing", "retries"),
        Some(4),
        "retry_max + 1 transient failures before giving up"
    );
    s.shutdown();
}

#[test]
fn drain_sources_timeout_is_counted() {
    use tcq_wrappers::ChannelSource;
    let s = Server::start(Config {
        step_mode: true,
        executor_threads: 1,
        ..Config::default()
    })
    .unwrap();
    s.register_stream("S", s_schema()).unwrap();
    let (src, producer) = ChannelSource::new("net", 8);
    s.attach_source("S", Box::new(src)).unwrap();
    // The producer never closes, so the source never exhausts.
    assert!(!s.drain_sources(Duration::from_millis(100)));
    let snap = s.metrics().unwrap().snapshot();
    assert_eq!(snap.value("wrapper", "server", "drain_timeout"), Some(1));
    producer.close();
    assert!(s.drain_sources(Duration::from_secs(10)));
    s.shutdown();
}

// ---------------------------------------------------- panic quarantine --

/// Drive the same workload with and without an injected operator panic:
/// the victim loses exactly the armed batch and is marked degraded; its
/// sibling's results are byte-identical to the fault-free run.
#[test]
fn injected_panic_degrades_only_its_query() {
    let run = |inject: bool| {
        let s = Server::start(Config {
            executor_threads: 1,
            ..Config::default()
        })
        .unwrap();
        s.register_stream("S", s_schema()).unwrap();
        let victim = tap(&s);
        let sibling = s.submit("SELECT seq FROM S WHERE seq >= -1").unwrap();
        for i in 1..=3 {
            push_seq(&s, i);
        }
        s.sync();
        if inject {
            s.inject_panic(victim.id).unwrap();
        }
        for i in 4..=6 {
            push_seq(&s, i);
        }
        s.sync();
        let out = (
            seqs(&victim),
            sibling.drain(),
            victim.is_degraded(),
            sibling.is_degraded(),
        );
        s.shutdown();
        out
    };
    let (v_ok, sib_ok, vd_ok, sd_ok) = run(false);
    let (v_bad, sib_bad, vd_bad, sd_bad) = run(true);
    assert_eq!(v_ok, vec![1, 2, 3, 4, 5, 6]);
    assert_eq!(
        v_bad,
        vec![1, 2, 3, 5, 6],
        "the armed batch (and only it) is quarantined"
    );
    assert!(!vd_ok && vd_bad, "victim degraded only when injected");
    assert!(!sd_ok && !sd_bad, "sibling never degraded");
    assert_eq!(
        sib_ok, sib_bad,
        "sibling results byte-identical across the fault"
    );
}

#[test]
fn quarantined_fault_lands_on_tcq_errors() {
    let s = Server::start(Config {
        executor_threads: 1,
        ..Config::default()
    })
    .unwrap();
    s.register_stream("S", s_schema()).unwrap();
    let errors_q = s.submit("SELECT * FROM tcq$errors").unwrap();
    let victim = tap(&s);
    push_seq(&s, 1);
    s.sync();
    s.inject_panic(victim.id).unwrap();
    push_seq(&s, 2);
    s.sync();
    s.emit_introspection();
    s.sync();
    let rows: Vec<_> = errors_q.drain().into_iter().flat_map(|r| r.rows).collect();
    let fault = rows
        .iter()
        .find(|r| r.field(0).as_int() == Some(victim.id as i64))
        .expect("a tcq$errors row names the victim query");
    assert_eq!(fault.field(1).as_str(), Some("shared_filter"));
    assert!(fault
        .field(2)
        .as_str()
        .unwrap()
        .contains("injected operator fault"));
    // The EO's quarantine counter ticked too.
    let snap = s.metrics().unwrap().snapshot();
    assert_eq!(snap.value("executor", "eo0", "quarantined"), Some(1));
    assert!(victim.is_degraded());
    s.shutdown();
}

#[test]
fn eddy_class_panic_quarantines_one_batch() {
    let s = Server::start(Config {
        executor_threads: 1,
        ..Config::default()
    })
    .unwrap();
    s.register_stream("S", s_schema()).unwrap();
    // A bare tap has no groupable predicate: it runs as a per-query eddy.
    let victim = s.submit("SELECT seq FROM S").unwrap();
    push_seq(&s, 1);
    s.sync();
    s.inject_panic(victim.id).unwrap();
    push_seq(&s, 2);
    push_seq(&s, 3);
    s.sync();
    assert_eq!(seqs(&victim), vec![1, 3], "one batch lost, then recovery");
    assert!(victim.is_degraded());
    s.shutdown();
}

#[test]
fn windowed_panic_skips_one_instant_and_advances() {
    let s = Server::start(Config {
        executor_threads: 1,
        ..Config::default()
    })
    .unwrap();
    s.register_stream("S", s_schema()).unwrap();
    let windowed_sql = "SELECT COUNT(*) AS n FROM S \
         for (t = 10; t <= 30; t += 10) { WindowIs(S, t - 9, t); }";
    let victim = s.submit(windowed_sql).unwrap();
    let sibling = s.submit(windowed_sql).unwrap();
    s.inject_panic(victim.id).unwrap();
    for i in 1..=30 {
        push_seq(&s, i);
    }
    s.punctuate("S", 30).unwrap();
    s.sync();
    let victim_ts: Vec<i64> = victim.drain().iter().map(|r| r.window_t.unwrap()).collect();
    let sibling_ts: Vec<i64> = sibling
        .drain()
        .iter()
        .map(|r| r.window_t.unwrap())
        .collect();
    assert_eq!(
        victim_ts,
        vec![20, 30],
        "the armed instant is skipped, the loop advances"
    );
    assert_eq!(sibling_ts, vec![10, 20, 30]);
    assert!(victim.is_degraded());
    assert!(!sibling.is_degraded());
    s.shutdown();
}

/// The async-index pending gauge registers under the `stems` family, so
/// a server-bound join surfaces on `tcq$operators` like any operator.
#[test]
fn async_index_pending_gauge_reaches_tcq_operators() {
    use tcq_stems::AsyncIndexJoin;
    use tcq_wrappers::SimulatedRemoteIndex;

    let s = Server::start(Config::default()).unwrap();
    s.register_stream("S", s_schema()).unwrap();
    let ops_q = s
        .submit("SELECT name, metric, value FROM tcq$operators WHERE value >= 0")
        .unwrap();
    let table: Vec<tcq_common::Tuple> = (0..4)
        .map(|k| tcq_common::Tuple::at_seq(vec![Value::Int(k), Value::Int(k * 10)], k))
        .collect();
    let idx = SimulatedRemoteIndex::new(5, table, &[0], 50, 50);
    let mut join = AsyncIndexJoin::new(vec![0], vec![0], Box::new(idx));
    join.bind_metrics(s.metrics().unwrap(), "remote_join");
    join.push_probe(tcq_common::Tuple::at_seq(vec![Value::Int(1)], 100));
    join.push_probe(tcq_common::Tuple::at_seq(vec![Value::Int(2)], 101));
    assert_eq!(join.pending_lookups(), 2);
    s.emit_introspection();
    s.sync();
    let rows: Vec<_> = ops_q.drain().into_iter().flat_map(|r| r.rows).collect();
    let gauge_row = rows
        .iter()
        .find(|r| {
            r.field(0).as_str() == Some("stems.remote_join")
                && r.field(1).as_str() == Some("pending_lookups")
        })
        .expect("pending_lookups surfaces on tcq$operators");
    assert_eq!(gauge_row.field(2).as_int(), Some(2));
    s.shutdown();
}

// ------------------------------------------- partitioned parallelism --

/// Shedding composes with the Flux exchange. At `partitions: 4` each
/// admitted batch is split into disjoint per-partition shares, so the
/// evicted-tuple counts are exact (never the over-count a broadcast
/// would give): delivered + shed == pushed, per-partition
/// `routed == processed + evicted`, and an evicted share still sends an
/// empty offer so the ordered merge never stalls — the freshest tuple
/// is always delivered.
#[test]
fn drop_oldest_partitioned_conserves_exactly() {
    for partitions in [1usize, 4] {
        let s = Server::start(Config {
            partitions,
            ..overload_config(ShedPolicy::DropOldest)
        })
        .unwrap();
        s.register_stream("S", s_schema()).unwrap();
        let h = tap(&s);
        for i in 1..=N {
            push_seq(&s, i);
        }
        s.sync();
        assert_conserved(&s);
        s.assert_quiescent();
        let st = s.shed_stats("S").unwrap();
        let delivered = seqs(&h);
        assert!(
            st.shed > 0,
            "overload must engage at p={partitions}: {st:?}"
        );
        assert_eq!(
            delivered.len() as u64 + st.shed,
            N as u64,
            "every tuple delivered or counted shed at p={partitions}"
        );
        assert_eq!(
            delivered.last().copied(),
            Some(N),
            "freshest-data-wins survives the merge at p={partitions}"
        );
        if partitions > 1 {
            let stats = s.partition_stats();
            for (i, (routed, processed, evicted)) in stats.iter().enumerate() {
                assert_eq!(*routed, processed + evicted, "partition {i} conservation");
            }
            let routed: u64 = stats.iter().map(|(r, _, _)| r).sum();
            let evicted: u64 = stats.iter().map(|(_, _, e)| e).sum();
            assert_eq!(routed, N as u64, "each tuple routed to exactly one share");
            assert_eq!(evicted, st.shed, "exchange evictions match the shed ledger");
        }
        s.shutdown();
    }
}

/// A flood against a small global memory budget must complete without
/// the in-flight estimate ever crossing the limit: breaching admission
/// evicts via the shed machinery (declared loss) instead of growing
/// toward an OOM kill. The `mem.budget` gauge row on `tcq$queues`
/// reuses the queue columns as (name, used, limit, charged, released,
/// high_water, denials), so the high-water reading is queryable through
/// the ordinary introspection path.
#[test]
fn memory_budget_flood_stays_under_budget() {
    const BUDGET: u64 = 4096;
    let s = Server::start(Config {
        mem_budget_bytes: Some(BUDGET),
        ..overload_config(ShedPolicy::DropOldest)
    })
    .unwrap();
    s.register_stream("S", s_schema()).unwrap();
    let h = tap(&s);
    let gauges = s
        .submit("SELECT * FROM tcq$queues WHERE depth >= 0")
        .unwrap();
    for i in 1..=N {
        push_seq(&s, i);
    }
    s.sync();
    s.emit_introspection();
    s.sync();
    assert_conserved(&s);
    s.assert_quiescent();
    let st = s.shed_stats("S").unwrap();
    let delivered = seqs(&h);
    assert_eq!(
        delivered.len() as u64 + st.shed,
        N as u64,
        "every tuple delivered or counted shed under the budget: {st:?}"
    );
    let budget_rows: Vec<_> = gauges
        .drain()
        .into_iter()
        .flat_map(|r| r.rows)
        .filter(|t| t.field(0).as_str() == Some("mem.budget"))
        .collect();
    let gauge = budget_rows.last().expect("global budget gauge published");
    assert_eq!(gauge.field(2).as_int(), Some(BUDGET as i64), "limit column");
    let high_water = gauge.field(5).as_int().unwrap();
    assert!(
        high_water > 0,
        "the flood actually charged the budget: {gauge:?}"
    );
    assert!(
        high_water as u64 <= BUDGET,
        "in-flight high water {high_water} must never exceed the budget {BUDGET}"
    );
    s.shutdown();
}

/// The router-lock broadcast invariant: `InjectPanic` reaches every
/// partition at the same point of the batch order, so all partitions
/// lose the SAME batch and the partitioned run degrades exactly like
/// the single-partition one — one batch lost, byte-identical recovery.
#[test]
fn injected_panic_partitioned_loses_one_batch_everywhere() {
    let run = |partitions: usize| {
        let s = Server::start(Config {
            step_mode: true,
            partitions,
            ..Config::default()
        })
        .unwrap();
        s.register_stream("S", s_schema()).unwrap();
        let victim = tap(&s);
        let sibling = s.submit("SELECT seq FROM S WHERE seq >= -1").unwrap();
        for i in 1..=3 {
            push_seq(&s, i);
        }
        s.sync();
        s.inject_panic(victim.id).unwrap();
        for i in 4..=6 {
            push_seq(&s, i);
        }
        s.sync();
        let out = (seqs(&victim), seqs(&sibling), victim.is_degraded());
        s.shutdown();
        out
    };
    let (v1, sib1, d1) = run(1);
    let (v4, sib4, d4) = run(4);
    assert_eq!(v1, vec![1, 2, 3, 5, 6], "one armed batch lost at p=1");
    assert_eq!(v4, v1, "partitions lose the same single batch");
    assert_eq!(sib4, sib1, "sibling byte-identical across partition counts");
    assert!(d1 && d4);
}
