//! End-to-end runs of the paper's §4.1 window-semantics examples over
//! the `ClosingStockPrices` schema, through the full server stack
//! (FrontEnd → Executor → archive-backed window scans).

use tcq::{Config, Server};
use tcq_common::{DataType, Field, Schema, Value};

fn stock_schema() -> Schema {
    Schema::qualified(
        "closingstockprices",
        vec![
            Field::new("timestamp", DataType::Int),
            Field::new("stockSymbol", DataType::Str),
            Field::new("closingPrice", DataType::Float),
        ],
    )
}

fn server() -> Server {
    let s = Server::start(Config::default()).unwrap();
    s.register_stream("ClosingStockPrices", stock_schema())
        .unwrap();
    s
}

/// Price for MSFT on a given day in the deterministic test feed.
fn msft_price(day: i64) -> f64 {
    40.0 + ((day * 7) % 30) as f64
}

fn feed_days(s: &Server, days: std::ops::RangeInclusive<i64>) {
    for day in days {
        s.push_at(
            "ClosingStockPrices",
            vec![
                Value::Int(day),
                Value::str("MSFT"),
                Value::Float(msft_price(day)),
            ],
            day,
        )
        .unwrap();
        s.push_at(
            "ClosingStockPrices",
            vec![Value::Int(day), Value::str("IBM"), Value::Float(90.0)],
            day,
        )
        .unwrap();
    }
}

/// §4.1 example 1 — snapshot query: "Select the closing prices for MSFT
/// on the first five days of trading."
#[test]
fn example_1_snapshot() {
    let s = server();
    feed_days(&s, 1..=10);
    s.sync();
    let h = s
        .submit(
            "SELECT closingPrice, timestamp \
             FROM ClosingStockPrices \
             WHERE stockSymbol = 'MSFT' \
             for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 5); }",
        )
        .unwrap();
    s.sync();
    let sets = h.drain();
    assert_eq!(sets.len(), 1, "snapshot queries run exactly once");
    assert_eq!(sets[0].rows.len(), 5);
    for (i, row) in sets[0].rows.iter().enumerate() {
        let day = i as i64 + 1;
        assert_eq!(row.field(0), &Value::Float(msft_price(day)));
        assert_eq!(row.field(1), &Value::Int(day));
    }
    assert!(h.is_finished(), "snapshot handles terminate");
    s.shutdown();
}

/// §4.1 example 2 — landmark query: "all the days after the hundredth
/// trading day, on which the closing price of MSFT has been greater
/// than $50" (shortened horizon).
#[test]
fn example_2_landmark() {
    let s = server();
    let h = s
        .submit(
            "SELECT closingPrice, timestamp \
             FROM ClosingStockPrices \
             WHERE stockSymbol = 'MSFT' AND closingPrice > 50.00 \
             for (t = 101; t <= 110; t++) { WindowIs(ClosingStockPrices, 101, t); }",
        )
        .unwrap();
    feed_days(&s, 1..=110);
    s.punctuate("ClosingStockPrices", 110).unwrap();
    s.sync();
    let sets = h.drain();
    assert_eq!(sets.len(), 10, "one result set per landmark instant");
    // Landmark windows expand: result sets are cumulative and nested.
    for w in sets.windows(2) {
        assert!(w[0].rows.len() <= w[1].rows.len());
        assert_eq!(&w[1].rows[..w[0].rows.len()], &w[0].rows[..]);
    }
    // Every reported price is > 50 and from days 101..=t.
    let last = sets.last().unwrap();
    for row in &last.rows {
        assert!(row.field(0).as_float().unwrap() > 50.0);
        let day = row.field(1).as_int().unwrap();
        assert!((101..=110).contains(&day));
    }
    // Cross-check against the generator.
    let expected = (101..=110).filter(|&d| msft_price(d) > 50.0).count();
    assert_eq!(last.rows.len(), expected);
    assert!(h.is_finished());
    s.shutdown();
}

/// §4.1 example 3 — sliding window: "the days on which MSFT closed
/// within $5 of its highest price over the past five days" becomes a
/// MAX over a width-5 sliding window.
#[test]
fn example_3_sliding_max() {
    let s = server();
    let h = s
        .submit(
            "SELECT MAX(closingPrice) AS hi \
             FROM ClosingStockPrices \
             WHERE stockSymbol = 'MSFT' \
             for (t = 5; t <= 12; t++) { WindowIs(ClosingStockPrices, t - 4, t); }",
        )
        .unwrap();
    feed_days(&s, 1..=12);
    s.punctuate("ClosingStockPrices", 12).unwrap();
    s.sync();
    let sets = h.drain();
    assert_eq!(sets.len(), 8);
    for rs in &sets {
        let t = rs.window_t.unwrap();
        let expected = (t - 4..=t).map(msft_price).fold(f64::MIN, f64::max);
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(
            rs.rows[0].field(0),
            &Value::Float(expected),
            "window at t={t}"
        );
    }
    s.shutdown();
}

/// §4.1 example 4 — sliding-window self-join: "days on which IBM closed
/// higher than MSFT" over a width-5 window starting at ST = 50.
#[test]
fn example_4_sliding_join() {
    let s = server();
    let h = s
        .submit(
            "SELECT c1.closingPrice, c2.closingPrice, c1.timestamp \
             FROM ClosingStockPrices c1, ClosingStockPrices c2 \
             WHERE c1.stockSymbol = 'MSFT' AND c2.stockSymbol = 'IBM' \
               AND c2.closingPrice > c1.closingPrice \
               AND c2.timestamp = c1.timestamp \
             for (t = 50; t < 55; t++) { \
               WindowIs(c1, t - 4, t); \
               WindowIs(c2, t - 4, t); \
             }",
        )
        .unwrap();
    feed_days(&s, 1..=55);
    s.sync();
    let sets = h.drain();
    assert_eq!(sets.len(), 5);
    for rs in &sets {
        let t = rs.window_t.unwrap();
        // IBM fixed at 90; MSFT beats it when msft_price >= 90 (never,
        // max is 69) — so every in-window day with IBM > MSFT matches.
        let expected = (t - 4..=t).filter(|&d| 90.0 > msft_price(d)).count();
        assert_eq!(rs.rows.len(), expected, "window at t={t}");
        for row in &rs.rows {
            assert!(row.field(1).as_float().unwrap() > row.field(0).as_float().unwrap());
        }
    }
    s.shutdown();
}

/// §4.1.2 — hopping windows with hop > width skip parts of the stream.
#[test]
fn hopping_window_skips_data() {
    let s = server();
    let h = s
        .submit(
            "SELECT COUNT(*) AS n FROM ClosingStockPrices \
             WHERE stockSymbol = 'MSFT' \
             for (t = 1; t <= 21; t += 10) { WindowIs(ClosingStockPrices, t, t + 4); }",
        )
        .unwrap();
    feed_days(&s, 1..=25);
    s.punctuate("ClosingStockPrices", 25).unwrap();
    s.sync();
    let sets = h.drain();
    // Instants t = 1, 11, 21: windows [1,5], [11,15], [21,25].
    assert_eq!(sets.len(), 3);
    for rs in &sets {
        assert_eq!(rs.rows[0].field(0), &Value::Int(5));
    }
    // Days 6..=10 and 16..=20 were never touched by any window.
    s.shutdown();
}

/// Backward-moving windows browse history most-recent-first (§4.1.1's
/// "browsing system" motivation).
#[test]
fn backward_windows_browse_history() {
    let s = server();
    feed_days(&s, 1..=30);
    s.punctuate("ClosingStockPrices", 30).unwrap();
    s.sync();
    let h = s
        .submit(
            "SELECT COUNT(*) AS n FROM ClosingStockPrices \
             WHERE stockSymbol = 'MSFT' \
             for (t = 0; t < 3; t++) { \
               WindowIs(ClosingStockPrices, -10 * t + 21, -10 * t + 30); }",
        )
        .unwrap();
    s.sync();
    let sets = h.drain();
    assert_eq!(sets.len(), 3, "windows [21,30], [11,20], [1,10]");
    for rs in &sets {
        assert_eq!(rs.rows[0].field(0), &Value::Int(10));
    }
    s.shutdown();
}

/// Windows defined before data arrives deliver as the stream catches up,
/// interleaving with pushes (continuous behaviour).
#[test]
fn windows_release_incrementally() {
    let s = server();
    let h = s
        .submit(
            "SELECT COUNT(*) AS n FROM ClosingStockPrices \
             for (t = 2; t <= 6; t += 2) { WindowIs(ClosingStockPrices, t - 1, t); }",
        )
        .unwrap();
    feed_days(&s, 1..=2);
    s.punctuate("ClosingStockPrices", 2).unwrap();
    s.sync();
    assert_eq!(h.drain().len(), 1, "window [1,2] released");
    feed_days(&s, 3..=4);
    s.punctuate("ClosingStockPrices", 4).unwrap();
    s.sync();
    assert_eq!(h.drain().len(), 1, "window [3,4] released");
    feed_days(&s, 5..=6);
    s.punctuate("ClosingStockPrices", 6).unwrap();
    s.sync();
    let last = h.drain();
    assert_eq!(last.len(), 1, "window [5,6] released");
    assert_eq!(
        last[0].rows[0].field(0),
        &Value::Int(4),
        "2 days x 2 symbols"
    );
    assert!(h.is_finished());
    s.shutdown();
}
