//! Failure-injection tests: Flux replication and failover, partitioned
//! join state movement, archive durability.

use tcq_common::{Timestamp, Tuple, Value};
use tcq_flux::{FaultAction, FaultSchedule, FluxCluster, GroupCount, WindowJoinOp};

fn row(k: i64, seq: i64) -> Tuple {
    Tuple::at_seq(vec![Value::Int(k)], seq)
}

fn total_count(c: &FluxCluster) -> i64 {
    c.snapshot()
        .iter()
        .map(|t| t.field(t.arity() - 1).as_int().unwrap())
        .sum()
}

/// Kill machines one after another on a replicated cluster: every
/// failover promotes a replica and re-replicates, so no counts are lost
/// until only one machine remains.
#[test]
fn cascading_failures_with_replication() {
    let mut c = FluxCluster::new(5, 64, &GroupCount::new(vec![0]), vec![0], true);
    let mut pushed = 0i64;
    for i in 0..2_000 {
        c.route(0, &row(i % 97, i)).unwrap();
        pushed += 1;
    }
    for victim in 0..3 {
        c.kill_machine(victim).unwrap();
        // Interleave more data after each failure.
        for i in 0..500 {
            c.route(0, &row(i % 97, pushed + i)).unwrap();
        }
        pushed += 500;
        assert_eq!(
            total_count(&c),
            pushed,
            "no loss after killing machine {victim}"
        );
        assert_eq!(c.stats().state_lost, 0);
    }
    assert!(c.stats().promotions >= 3);
}

/// The same scenario without replication loses exactly the dead
/// machine's partitions — quantifying what the replication knob buys.
#[test]
fn failure_without_replication_quantified() {
    let mut with = FluxCluster::new(4, 64, &GroupCount::new(vec![0]), vec![0], true);
    let mut without = FluxCluster::new(4, 64, &GroupCount::new(vec![0]), vec![0], false);
    for i in 0..4_000 {
        let t = row(i % 64, i);
        with.route(0, &t).unwrap();
        without.route(0, &t).unwrap();
    }
    with.kill_machine(2).unwrap();
    without.kill_machine(2).unwrap();
    assert_eq!(total_count(&with), 4_000);
    let lost = 4_000 - total_count(&without);
    assert!(lost > 0, "unreplicated failure must lose state");
    assert!(without.stats().state_lost > 0);
    assert_eq!(with.stats().state_lost, 0);
}

/// Rebalancing moves *join* state (large, ever-changing operator state —
/// the hard case §2.4 calls out) without duplicating or dropping
/// matches.
#[test]
fn join_state_moves_without_duplicates() {
    let op = WindowJoinOp::new(vec![0], vec![0], 1);
    let mut c = FluxCluster::new(3, 32, &op, vec![0], false);
    c.set_speed(0, 0.2);
    let mut matches = 0usize;
    // Interleave left/right tuples and periodic rebalances.
    for i in 0..3_000i64 {
        let key = i % 50;
        matches += c.route((i % 2) as usize, &row(key, i)).unwrap().len();
        if i % 500 == 499 {
            c.rebalance();
        }
    }
    // Reference: same interleaving through a single operator.
    let mut reference = WindowJoinOp::new(vec![0], vec![0], 1);
    use tcq_flux::PartitionedOp;
    let mut expected = 0usize;
    for i in 0..3_000i64 {
        let key = i % 50;
        expected += reference.process(0, (i % 2) as usize, &row(key, i)).len();
    }
    assert_eq!(
        matches, expected,
        "moves must not duplicate or drop matches"
    );
    assert!(c.stats().partitions_moved > 0, "the slow machine shed work");
}

/// Rebalance decisions converge: repeated rebalancing on a stable
/// workload stops moving partitions.
#[test]
fn rebalance_converges() {
    let mut c = FluxCluster::new(4, 64, &GroupCount::new(vec![0]), vec![0], false);
    c.set_speed(3, 0.5);
    for round in 0..6 {
        c.reset_loads();
        for i in 0..4_000 {
            c.route(0, &row(i % 64, round * 4_000 + i)).unwrap();
        }
        c.rebalance();
    }
    // One more measurement round: the plan should be stable now.
    c.reset_loads();
    for i in 0..4_000 {
        c.route(0, &row(i % 64, 100_000 + i)).unwrap();
    }
    let moved = c.rebalance();
    assert!(
        moved <= 2,
        "rebalancing should have converged, moved {moved}"
    );
}

/// Archive durability: data written through the spooler is readable by
/// a brand-new archive-reading stack (fresh buffer pool), i.e. it really
/// is on disk.
#[test]
fn archive_survives_reader_restart() {
    use std::sync::{Arc, Mutex};
    use tcq_storage::{BufferPool, Replacement, Spooler, StreamArchive};

    let dir = std::env::temp_dir().join(format!("tcq-ft-archive-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    {
        let spooler = Spooler::start().unwrap();
        let pool = Arc::new(Mutex::new(BufferPool::new(4, Replacement::Lru)));
        let mut a = StreamArchive::new(1, &dir, 16, pool, Some(&spooler));
        for i in 1..=160 {
            a.append(Tuple::at_seq(vec![Value::Int(i)], i)).unwrap();
        }
        a.flush();
        assert_eq!(a.stats().spooled, 10);
        // Archive and spooler drop here — a crash of the writer.
    }

    // A new process (here: new archive over the same dir) can replay the
    // sealed segments directly from the files.
    let mut total = 0usize;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let bytes = std::fs::read(entry.unwrap().path()).unwrap();
        total += tcq_storage::codec::decode_batch(&bytes).unwrap().len();
    }
    assert_eq!(total, 160, "every sealed tuple is durable and decodable");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Drive one seeded kill/restart/rebalance schedule against a
/// replicated cluster, checking conservation after every burst. Returns
/// the final (pushed, stats) for cross-seed assertions. The schedule
/// itself is the shared `tcq_flux::FaultSchedule` — the same generator
/// the simulation harness composes into chaos episodes — so a failing
/// seed here replays identically there.
fn run_fault_schedule(seed: u64, cluster: &mut FluxCluster) -> i64 {
    let mut schedule = FaultSchedule::new(seed, 5, 3);
    let mut pushed = 0i64;
    for step in 0..60 {
        // A burst of routed tuples between faults.
        let (burst, action) = schedule.next_step();
        for i in 0..burst as i64 {
            cluster
                .route(0, &row((pushed + i) % 97, pushed + i))
                .unwrap();
        }
        pushed += burst as i64;
        match action {
            // Kill a random alive machine; the schedule keeps >= 3
            // alive so a replica always exists and can be
            // re-established.
            FaultAction::Kill(v) => cluster.kill_machine(v).unwrap(),
            // Restart a dead machine: it rejoins empty and is healed
            // from the surviving replicas.
            FaultAction::Restart(v) => cluster.restart_machine(v).unwrap(),
            FaultAction::Rebalance => {
                cluster.rebalance();
            }
            FaultAction::Calm => {}
        }
        assert_eq!(
            total_count(cluster),
            pushed,
            "seed {seed}: tuple loss or duplication at step {step}"
        );
        assert_eq!(
            cluster.stats().state_lost,
            0,
            "seed {seed}: replicated takeover lost state at step {step}"
        );
    }
    pushed
}

/// Seeded fault-injection schedules: random kill/restart/rebalance
/// interleavings on a replicated cluster never lose or duplicate
/// tuples, and the bound metrics agree with the cluster's own stats.
#[test]
fn seeded_kill_restart_schedules_conserve_tuples() {
    use tcq_metrics::Registry;
    for seed in [1u64, 7, 42, 0xdead_beef, 0x7e1e_6ca9] {
        let registry = Registry::new();
        let mut c = FluxCluster::new(5, 64, &GroupCount::new(vec![0]), vec![0], true);
        c.bind_metrics(&registry, "cluster");
        let pushed = run_fault_schedule(seed, &mut c);
        c.sync_metrics();
        let snap = registry.snapshot();
        assert_eq!(
            snap.value("flux", "cluster", "routed").unwrap(),
            pushed,
            "seed {seed}: routed counter counts every push exactly once"
        );
        assert_eq!(snap.value("flux", "cluster", "state_lost").unwrap(), 0);
        assert_eq!(
            snap.value("flux", "cluster", "promotions").unwrap() as u64,
            c.stats().promotions,
            "seed {seed}: metrics mirror ClusterStats"
        );
        let alive_now: i64 = (0..5)
            .map(|m| {
                snap.value("flux", &format!("cluster.m{m}"), "alive")
                    .unwrap()
            })
            .sum();
        assert!(alive_now >= 3, "seed {seed}: schedule keeps >= 3 alive");
    }
}

/// The same seed replays the same schedule: final counters are
/// bit-identical across runs, so a failing seed is a reproducible bug
/// report.
#[test]
fn fault_schedules_are_deterministic() {
    let run = |seed: u64| {
        let mut c = FluxCluster::new(5, 64, &GroupCount::new(vec![0]), vec![0], true);
        let pushed = run_fault_schedule(seed, &mut c);
        let s = c.stats();
        (
            pushed,
            s.routed,
            s.promotions,
            s.partitions_moved,
            s.state_moved,
            total_count(&c),
        )
    };
    assert_eq!(run(42), run(42));
    assert_eq!(run(7), run(7));
    assert_ne!(
        run(42).1,
        run(43).1,
        "different seeds produce different schedules"
    );
}

/// Restarted machines rejoin cold through the public cluster API: a
/// kill → restart → kill sequence on the same machine still loses
/// nothing, because the restart re-established its replicas.
#[test]
fn restart_then_second_failure_loses_nothing() {
    let mut c = FluxCluster::new(4, 32, &GroupCount::new(vec![0]), vec![0], true);
    for i in 0..1_000 {
        c.route(0, &row(i % 31, i)).unwrap();
    }
    c.kill_machine(1).unwrap();
    assert_eq!(total_count(&c), 1_000);
    for i in 0..500 {
        c.route(0, &row(i % 31, 1_000 + i)).unwrap();
    }
    c.restart_machine(1).unwrap();
    // The healed cluster survives losing a *different* machine...
    c.kill_machine(2).unwrap();
    assert_eq!(total_count(&c), 1_500);
    // ...and the twice-unlucky original.
    c.restart_machine(2).unwrap();
    c.kill_machine(1).unwrap();
    assert_eq!(total_count(&c), 1_500);
    assert_eq!(c.stats().state_lost, 0);
}

/// Eddy window eviction under adversarial interleaving: evictions
/// between probes never corrupt results (they only shrink windows).
#[test]
fn eddy_eviction_is_safe_under_interleaving() {
    use tcq_common::Expr;
    use tcq_eddy::{EddyBuilder, NaivePolicy, StemOp};

    let mut e = EddyBuilder::new(vec![1, 1], Box::new(NaivePolicy::new(5)))
        .stem(StemOp::new("stemL", 0, vec![0], vec![1]))
        .stem(StemOp::new("stemR", 1, vec![0], vec![0]))
        .build();
    let _ = Expr::col(0); // silence unused-import pedantry in some configs
    let mut out = 0usize;
    for i in 0..1_000i64 {
        out += e.push(0, Tuple::at_seq(vec![Value::Int(i % 10)], i)).len();
        out += e.push(1, Tuple::at_seq(vec![Value::Int(i % 10)], i)).len();
        if i % 100 == 99 {
            e.evict_before(Timestamp::logical(i - 50));
        }
    }
    assert!(out > 0);
    // After heavy eviction the SteMs stay bounded.
    e.evict_before(Timestamp::logical(990));
    let pending_state: usize = e
        .op_stats()
        .iter()
        .map(|s| s.routed as usize)
        .sum::<usize>();
    assert!(pending_state > 0, "smoke: stats accumulated");
}
