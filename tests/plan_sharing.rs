//! Property-based tests for cross-query plan sharing (DESIGN §17).
//!
//! The tentpole invariant: `Config::plan_sharing` is a pure execution
//! strategy — flipping it must be invisible to clients. For a family of
//! K near-identical queries (same source, same window, varied literal
//! constants, projections, and residual shapes), every query's drained
//! output — row order included — is byte-identical between the shared
//! run (one CACQ core or window family plus per-query residuals) and
//! the unshared run (K independent dataflows), across family sizes
//! {2, 16, 128}, partitions {1, 4}, row and columnar execution, and
//! arbitrary admit/remove interleavings. A removal mid-stream must tear
//! down only the leaving member's slot: the refcounted family neither
//! strands the leaver's buffered results nor perturbs its siblings.

use proptest::prelude::*;

use tcq_common::{DataType, Field, Schema, Value};

/// K near-identical queries over the `quotes` stream: identical shape
/// (and, when `windowed`, an identical window loop — the planner's
/// core signature keys on exactly that), with constants, projections,
/// and residual factors varied per member. `price > day` is not a
/// single-column comparison, so members drawing it exercise residual
/// widening (alongside a threshold) and the match-all family path
/// (alone).
fn family_queries(k: usize, windowed: bool, horizon: i64) -> Vec<String> {
    (0..k)
        .map(|i| {
            let thresh = 30 + (i % 8) as i64 * 5;
            let proj = ["day, sym, price", "sym, price", "day, price"][i % 3];
            let pred = match i % 4 {
                0 => format!("price > {thresh} AND price > day"),
                1 => "price > day".to_string(),
                _ => format!("price > {thresh}"),
            };
            if windowed {
                format!(
                    "SELECT {proj} FROM quotes WHERE {pred} \
                     for (t = 1; t <= {horizon}; t++) {{ WindowIs(quotes, t - 3, t); }}"
                )
            } else {
                format!("SELECT {proj} FROM quotes WHERE {pred}")
            }
        })
        .collect()
}

/// Run the family in deterministic step mode and return every query's
/// full drained output in delivery order. `removals` stops queries
/// mid-stream: `(q, row)` stops query `q` just after the `row`-th push
/// (whatever it buffered by then is its final answer). No sorting
/// anywhere — byte-identical order is part of the contract.
fn family_answers(
    plan_sharing: bool,
    queries: &[String],
    partitions: usize,
    columnar: bool,
    rows: &[(i64, i64)],
    removals: &[(usize, usize)],
) -> Vec<Vec<tcq::ResultSet>> {
    let server = tcq::Server::start(tcq::Config {
        step_mode: true,
        batch_size: 2,
        partitions,
        columnar,
        plan_sharing,
        ..tcq::Config::default()
    })
    .expect("server starts");
    server
        .register_stream(
            "quotes",
            Schema::qualified(
                "quotes",
                vec![
                    Field::new("day", DataType::Int),
                    Field::new("sym", DataType::Str),
                    Field::new("price", DataType::Int),
                ],
            ),
        )
        .expect("quotes registers");
    let handles: Vec<tcq::QueryHandle> = queries
        .iter()
        .map(|q| server.submit(q).expect("family member submits"))
        .collect();
    let syms = ["aapl", "ibm", "msft", "orcl"];
    let mut out: Vec<Vec<tcq::ResultSet>> = vec![Vec::new(); handles.len()];
    let mut stopped = vec![false; handles.len()];
    let horizon = rows.len() as i64;
    for (j, &(sym_pick, price)) in rows.iter().enumerate() {
        let t = j as i64 + 1;
        server
            .push_at(
                "quotes",
                vec![
                    Value::Int(t),
                    Value::str(syms[sym_pick as usize % 4]),
                    Value::Int(price),
                ],
                t,
            )
            .expect("push succeeds");
        for &(q, row) in removals {
            let q = q % handles.len();
            if row == j && !stopped[q] {
                server.sync();
                out[q].extend(handles[q].drain());
                server.stop_query(handles[q].id).expect("stop succeeds");
                stopped[q] = true;
            }
        }
    }
    server.punctuate("quotes", horizon).expect("punctuate");
    server.sync();
    server.assert_quiescent();
    for (q, h) in handles.iter().enumerate() {
        if !stopped[q] {
            out[q].extend(h.drain());
        }
    }
    server.shutdown();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Shared ≡ unshared, byte for byte, with the family size swept
    /// through {2, 16, 128} and the engine through partitions {1, 4} ×
    /// columnar {0, 1} × {unwindowed CACQ, windowed family} — plus up
    /// to two admit/remove interleavings per case, so the refcounted
    /// teardown path runs under the comparison too.
    #[test]
    fn shared_equals_unshared_byte_identical(
        k in prop_oneof![Just(2usize), Just(16usize), Just(128usize)],
        partitions in prop_oneof![Just(1usize), Just(4usize)],
        columnar_pick in 0u8..2,
        windowed_pick in 0u8..2,
        rows in proptest::collection::vec((0i64..4, 0i64..100), 6..24),
        removals in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..3),
    ) {
        let windowed = windowed_pick == 1;
        let queries = family_queries(k, windowed, rows.len() as i64);
        let removals: Vec<(usize, usize)> = removals
            .iter()
            .map(|&(a, b)| (a as usize % k, b as usize % rows.len()))
            .collect();
        let shared = family_answers(
            true, &queries, partitions, columnar_pick == 1, &rows, &removals);
        let unshared = family_answers(
            false, &queries, partitions, columnar_pick == 1, &rows, &removals);
        prop_assert_eq!(shared, unshared);
    }
}

/// Deterministic teardown pin: members of one window family leave one
/// by one mid-stream, and each departure leaves every sibling's output
/// exactly what the unshared engine produces — the refcounted family
/// never strands a leaver's buffered rows and never kills a sibling.
#[test]
fn family_teardown_leaves_siblings_intact() {
    let rows: Vec<(i64, i64)> = (0..18).map(|i| (i % 4, (i * 13) % 100)).collect();
    let queries = family_queries(4, true, rows.len() as i64);
    // Remove members 2, 0, 3 after rows 4, 9, 13; member 1 runs to
    // completion over a family that shrinks to just itself.
    let removals = [(2usize, 4usize), (0, 9), (3, 13)];
    let shared = family_answers(true, &queries, 1, false, &rows, &removals);
    let unshared = family_answers(false, &queries, 1, false, &rows, &removals);
    assert_eq!(shared, unshared);
    // The survivor really produced windows (the comparison is not
    // vacuously empty).
    assert!(
        shared[1].iter().any(|set| !set.rows.is_empty()),
        "surviving family member produced no rows"
    );
}
