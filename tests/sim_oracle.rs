//! Oracle coverage for the CQ-SQL corpus.
//!
//! Three layers, all over one fixed deterministic trace:
//!
//! 1. **Goldens** — every `tests/sql_corpus/*.sql` query (including the
//!    `tcq$*` introspection queries) is evaluated by the reference
//!    interpreter ([`sim::oracle::evaluate_plan`]) and the rendered
//!    result must match the committed `.oracle.golden` snapshot. This
//!    pins the *semantics* of each corpus query the way `sql_golden`
//!    pins its plan.
//! 2. **Engine agreement** — every non-`tcq$` corpus query also runs on
//!    a real step-mode server fed the same trace; engine output must
//!    match the oracle under the declared contract (exact order for
//!    single-stream unwindowed queries under `Block`, multiset for
//!    joins, instant-by-instant for windowed queries).
//! 3. **Randomized smoke** — a handful of generated episodes through
//!    the full `check_episode` loop (byte-identical replay, invariants,
//!    differential oracle), so `cargo test` exercises the sim stack
//!    without needing the `tcq-sim` binary.
//!
//! Refresh the snapshots after an intentional semantics change:
//!
//! ```text
//! TCQ_REGEN_GOLDEN=1 cargo test -p sim --test sim_oracle
//! ```

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use sim::oracle::{evaluate_plan, OracleQuery};
use sim::{check_episode, generate, GenOptions};
use tcq::{Config, Server};
use tcq_common::{
    Catalog, Consistency, DataType, Field, Schema, ShedPolicy, Timestamp, Tuple, Value,
};
use tcq_sql::Planner;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/sql_corpus")
}

/// Final punctuation for every corpus stream: far past the last tick,
/// so every windowed instant in the corpus is released.
const HORIZON: i64 = 1_000;

const SYMS: [&str; 4] = ["MSFT", "IBM", "ORCL", "AAPL"];

fn stock_schema() -> Schema {
    Schema::qualified(
        "closingstockprices",
        vec![
            Field::new("timestamp", DataType::Int),
            Field::new("stockSymbol", DataType::Str),
            Field::new("closingPrice", DataType::Float),
        ],
    )
}

/// The fixed stock trace: two rows per even tick in 2..=150, symbols
/// cycling so MSFT and IBM share a tick (feeding the self-join), prices
/// multiples of 2.5 (exact in f64, so aggregate sums are
/// order-independent).
fn stock_rows() -> Vec<(i64, Vec<Value>)> {
    let mut rows = Vec::new();
    let mut k = 0usize;
    for tick in (2..=150).step_by(2) {
        for _ in 0..2 {
            rows.push((
                tick,
                vec![
                    Value::Int(tick),
                    Value::str(SYMS[k % 4]),
                    Value::Float((k * 7 % 29) as f64 * 2.5),
                ],
            ));
            k += 1;
        }
    }
    rows
}

/// Hand-built rows for the `tcq$*` introspection streams, shaped so
/// each corpus predicate keeps some rows and drops others.
fn introspection_rows() -> Vec<(&'static str, Vec<Vec<Value>>)> {
    fn s(v: &str) -> Value {
        Value::str(v)
    }
    vec![
        (
            "tcq$queues",
            vec![
                vec![
                    s("eo0.input"),
                    Value::Int(120),
                    Value::Int(256),
                    Value::Int(1_120),
                    Value::Int(1_000),
                    Value::Int(3),
                    Value::Int(4),
                ],
                vec![
                    s("eo1.input"),
                    Value::Int(12),
                    Value::Int(256),
                    Value::Int(512),
                    Value::Int(500),
                    Value::Int(0),
                    Value::Int(1),
                ],
                vec![
                    s("wrapper.out"),
                    Value::Int(300),
                    Value::Int(512),
                    Value::Int(4_300),
                    Value::Int(4_000),
                    Value::Int(7),
                    Value::Int(2),
                ],
                vec![
                    s("client.0"),
                    Value::Int(64),
                    Value::Int(128),
                    Value::Int(64),
                    Value::Int(0),
                    Value::Int(0),
                    Value::Int(0),
                ],
            ],
        ),
        (
            "tcq$operators",
            vec![
                vec![s("eddy.0"), s("routed"), Value::Int(1_500)],
                vec![s("stem.quotes"), s("probes"), Value::Int(999)],
                vec![s("filter.shared"), s("batches"), Value::Int(1_000)],
                vec![s("window.3"), s("instants"), Value::Int(42)],
            ],
        ),
        (
            "tcq$shed",
            vec![
                vec![s("quotes"), s("spill"), s("shed"), Value::Int(17)],
                vec![s("sensors"), s("block"), s("shed"), Value::Int(0)],
                vec![s("quotes"), s("spill"), s("spilled"), Value::Int(9)],
            ],
        ),
        (
            "tcq$errors",
            vec![
                vec![
                    Value::Int(3),
                    s("shared_filter"),
                    s("injected operator fault"),
                    s("operator_panic"),
                ],
                vec![Value::Int(1), s("eddy"), s("boom"), s("operator_panic")],
                vec![
                    Value::Int(2),
                    s("shared_filter"),
                    s("div by zero"),
                    s("operator_panic"),
                ],
            ],
        ),
    ]
}

/// The corpus trace keyed the way `evaluate_plan` expects (lowercased
/// catalog names), plus the final punctuation map.
fn corpus_trace() -> (BTreeMap<String, Vec<Tuple>>, BTreeMap<String, i64>) {
    let mut trace = BTreeMap::new();
    let mut punct = BTreeMap::new();
    trace.insert(
        "closingstockprices".to_string(),
        stock_rows()
            .into_iter()
            .map(|(t, fields)| Tuple::new(fields, Timestamp::logical(t)))
            .collect(),
    );
    punct.insert("closingstockprices".to_string(), HORIZON);
    for (stream, rows) in introspection_rows() {
        trace.insert(
            stream.to_string(),
            rows.into_iter()
                .enumerate()
                .map(|(i, fields)| Tuple::new(fields, Timestamp::logical(i as i64 + 1)))
                .collect(),
        );
        punct.insert(stream.to_string(), HORIZON);
    }
    (trace, punct)
}

/// The corpus catalog (mirrors `sql_golden` / the server's
/// registrations).
fn corpus_catalog() -> Catalog {
    let c = Catalog::new();
    c.register_stream("ClosingStockPrices", stock_schema())
        .unwrap();
    c.register_stream(
        "tcq$queues",
        Schema::qualified(
            "tcq$queues",
            vec![
                Field::new("name", DataType::Str),
                Field::new("depth", DataType::Int),
                Field::new("capacity", DataType::Int),
                Field::new("enqueued", DataType::Int),
                Field::new("dequeued", DataType::Int),
                Field::new("enq_locks", DataType::Int),
                Field::new("deq_locks", DataType::Int),
            ],
        ),
    )
    .unwrap();
    c.register_stream(
        "tcq$operators",
        Schema::qualified(
            "tcq$operators",
            vec![
                Field::new("name", DataType::Str),
                Field::new("metric", DataType::Str),
                Field::new("value", DataType::Int),
            ],
        ),
    )
    .unwrap();
    c.register_stream(
        "tcq$shed",
        Schema::qualified(
            "tcq$shed",
            vec![
                Field::new("stream", DataType::Str),
                Field::new("policy", DataType::Str),
                Field::new("metric", DataType::Str),
                Field::new("value", DataType::Int),
            ],
        ),
    )
    .unwrap();
    c.register_stream(
        "tcq$errors",
        Schema::qualified(
            "tcq$errors",
            vec![
                Field::new("qid", DataType::Int),
                Field::new("operator", DataType::Str),
                Field::new("payload", DataType::Str),
                Field::new("kind", DataType::Str),
            ],
        ),
    )
    .unwrap();
    c
}

fn render_values(vs: &[Value]) -> String {
    vs.iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join("|")
}

/// Render an oracle result. Unwindowed rows keep arrival order (it is
/// part of the single-stream contract); windowed instants sort their
/// rows because intra-instant order is not.
fn render_oracle(q: &OracleQuery) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    match q {
        OracleQuery::Unwindowed { rows, exact_order } => {
            let _ = writeln!(out, "unwindowed exact_order={exact_order}");
            for r in rows {
                let _ = writeln!(out, "  {}", render_values(r));
            }
        }
        OracleQuery::Windowed { instants } => {
            let _ = writeln!(out, "windowed {} instants", instants.len());
            for (t, rows) in instants {
                let mut rendered: Vec<String> = rows.iter().map(|r| render_values(r)).collect();
                rendered.sort();
                let _ = write!(out, "  t={t}:");
                for r in &rendered {
                    let _ = write!(out, " [{r}]");
                }
                let _ = writeln!(out);
            }
        }
    }
    out
}

fn corpus_queries() -> Vec<PathBuf> {
    let dir = corpus_dir();
    let mut queries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "sql"))
        .collect();
    queries.sort();
    assert!(!queries.is_empty(), "empty corpus at {}", dir.display());
    queries
}

#[test]
fn oracle_corpus_matches_goldens() {
    let regen = std::env::var_os("TCQ_REGEN_GOLDEN").is_some();
    let planner = Planner::new(corpus_catalog());
    let (trace, punct) = corpus_trace();

    let mut failures = Vec::new();
    for path in &corpus_queries() {
        let name = path.file_stem().unwrap().to_string_lossy().to_string();
        let sql = std::fs::read_to_string(path).unwrap();
        let plan = planner
            .plan_sql(&sql)
            .unwrap_or_else(|e| panic!("{name}: fails to plan: {e}"));
        // Goldens pin semantics at the default `Watermark` level; the
        // trace is fully punctuated, so both levels agree anyway.
        let result = evaluate_plan(&plan, &trace, &punct, true, Consistency::Watermark)
            .unwrap_or_else(|e| panic!("{name}: oracle evaluation failed: {e}"));
        let got = format!(
            "-- oracle: {name}\n{}\n=== RESULT ===\n{}",
            sql.trim_end(),
            render_oracle(&result)
        );
        let golden_path = path.with_extension("oracle.golden");
        if regen {
            std::fs::write(&golden_path, &got).unwrap();
            continue;
        }
        match std::fs::read_to_string(&golden_path) {
            Ok(want) if want == got => {}
            Ok(want) => {
                let diff_line = got
                    .lines()
                    .zip(want.lines())
                    .position(|(g, w)| g != w)
                    .map(|i| i + 1)
                    .unwrap_or_else(|| got.lines().count().min(want.lines().count()) + 1);
                failures.push(format!("{name}: differs from golden at line {diff_line}"));
            }
            Err(_) => failures.push(format!("{name}: missing golden {}", golden_path.display())),
        }
    }
    assert!(
        failures.is_empty(),
        "{} oracle snapshot(s) changed:\n  {}\n\
         If the change is intentional, regenerate with\n  \
         TCQ_REGEN_GOLDEN=1 cargo test -p sim --test sim_oracle\n\
         and review the .oracle.golden diff.",
        failures.len(),
        failures.join("\n  ")
    );
}

/// Run one corpus query on a real step-mode server fed the fixed trace.
fn run_engine(sql: &str) -> Vec<tcq::ResultSet> {
    let server = Server::start(Config {
        step_mode: true,
        executor_threads: 2,
        seed: 7,
        batch_size: 2,
        input_queue: 1024,
        result_buffer: 1 << 14,
        ..Config::default()
    })
    .unwrap();
    server
        .register_stream("ClosingStockPrices", stock_schema())
        .unwrap();
    let h = server.submit(sql).unwrap();
    for (tick, fields) in stock_rows() {
        server.push_at("ClosingStockPrices", fields, tick).unwrap();
    }
    server.punctuate("ClosingStockPrices", HORIZON).unwrap();
    assert!(server.sim_settle(1_000_000), "settle did not converge");
    let sets = h.drain();
    server.shutdown();
    sets
}

#[test]
fn engine_agrees_with_oracle_on_corpus() {
    let planner = Planner::new(corpus_catalog());
    let (trace, punct) = corpus_trace();

    for path in &corpus_queries() {
        let name = path.file_stem().unwrap().to_string_lossy().to_string();
        let sql = std::fs::read_to_string(path).unwrap();
        if sql.contains("tcq$") {
            // Introspection streams carry live engine metrics, not the
            // synthetic golden rows; those queries are covered by the
            // goldens above and by tests/introspection.rs.
            continue;
        }
        let plan = planner.plan_sql(&sql).unwrap();
        // The engine leg honors `TCQ_CONSISTENCY`; evaluate the oracle
        // at the same level so the CI speculative leg stays comparable.
        let oracle =
            evaluate_plan(&plan, &trace, &punct, true, Config::default().consistency).unwrap();
        let sets = run_engine(&sql);
        match &oracle {
            OracleQuery::Unwindowed { rows, exact_order } => {
                let engine: Vec<String> = sets
                    .iter()
                    .flat_map(|rs| {
                        assert!(rs.window_t.is_none(), "{name}: unexpected window result");
                        rs.rows.iter().map(|t| render_values(t.fields()))
                    })
                    .collect();
                let mut want: Vec<String> = rows.iter().map(|r| render_values(r)).collect();
                if *exact_order {
                    assert_eq!(engine, want, "{name}: ordered rows diverge");
                } else {
                    let mut got = engine;
                    got.sort();
                    want.sort();
                    assert_eq!(got, want, "{name}: row multisets diverge");
                }
            }
            OracleQuery::Windowed { instants } => {
                let engine: Vec<(i64, Vec<String>)> = sets
                    .iter()
                    .map(|rs| {
                        let t = rs.window_t.unwrap_or_else(|| {
                            panic!("{name}: windowed query emitted a batch result")
                        });
                        let mut rows: Vec<String> =
                            rs.rows.iter().map(|t| render_values(t.fields())).collect();
                        rows.sort();
                        (t, rows)
                    })
                    .collect();
                let want: Vec<(i64, Vec<String>)> = instants
                    .iter()
                    .map(|(t, rows)| {
                        let mut rows: Vec<String> = rows.iter().map(|r| render_values(r)).collect();
                        rows.sort();
                        (*t, rows)
                    })
                    .collect();
                assert_eq!(engine, want, "{name}: window instants diverge");
            }
        }
    }
}

/// Injected operator faults are caught by the engine's quarantine
/// boundaries; keep their backtraces out of the test output. Installed
/// once — several tests replay fault-injecting episodes and
/// `set_hook` must not race between them.
fn silence_injected_fault_panics() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains("injected operator fault"))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("injected operator fault"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

#[test]
fn random_episode_smoke() {
    silence_injected_fault_panics();
    let opts = GenOptions::default();
    for i in 0..25 {
        let ep = generate(0xC0FFEE, i, &opts);
        let failures = check_episode(&ep);
        assert!(
            failures.is_empty(),
            "episode {i} failed:\n{}",
            failures.join("\n")
        );
    }
}

/// Out-of-order arrival through the full `check_episode` loop: the
/// generator's disorder arm shuffles event timestamps within a declared
/// bound (plus maximum-lag stragglers), and the oracle diff must hold
/// with **no new tolerances** at both consistency levels. `Block` + no
/// faults keeps every episode eligible for the order-shuffle
/// metamorphic check, which re-runs it with rows sorted into event-time
/// order and compares folded final answers.
#[test]
fn out_of_order_episode_smoke() {
    silence_injected_fault_panics();
    for (j, consistency) in [Consistency::Watermark, Consistency::Speculative]
        .iter()
        .enumerate()
    {
        let opts = GenOptions {
            policy: Some(ShedPolicy::Block),
            faults: Some(false),
            disorder: true,
            consistency: Some(*consistency),
            ..GenOptions::default()
        };
        let mut metamorphic = 0usize;
        for i in 0..8 {
            let ep = generate(0xD150 + j as u64, i, &opts);
            assert!(ep.has_disorder(), "disorder opt-in produced none");
            metamorphic += sim::metamorphic_eligible(&ep) as usize;
            let failures = check_episode(&ep);
            assert!(
                failures.is_empty(),
                "{} episode {i} failed:\n{}",
                consistency.name(),
                failures.join("\n")
            );
        }
        assert!(
            metamorphic > 0,
            "no {} episode ran the metamorphic check",
            consistency.name()
        );
    }
}

/// Replay every previously-shrunk reproducer in `tests/sim_corpus/`
/// through the full `check_episode` loop from inside `cargo test`.
/// The sim driver builds its server from `..Config::default()`, so the
/// CI matrix (`TCQ_COLUMNAR` × `TCQ_PARTITIONS`) replays the corpus on
/// both execution paths, not just the one `tcq-sim --smoke` ran under.
#[test]
fn sim_corpus_replays_cleanly() {
    silence_injected_fault_panics();
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/sim_corpus");
    let mut episodes: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "episode"))
        .collect();
    episodes.sort();
    assert!(!episodes.is_empty(), "empty corpus at {}", dir.display());
    for path in &episodes {
        let name = path.file_name().unwrap().to_string_lossy();
        let text = std::fs::read_to_string(path).unwrap();
        let ep = sim::Episode::parse(&text).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
        let failures = check_episode(&ep);
        assert!(
            failures.is_empty(),
            "{name} failed:\n{}",
            failures.join("\n")
        );
    }
}
