SELECT name, metric, value FROM tcq$operators WHERE value >= 1000
