SELECT c1.closingPrice, c2.closingPrice
FROM ClosingStockPrices c1, ClosingStockPrices c2
WHERE c1.stockSymbol = 'MSFT' AND c2.stockSymbol = 'IBM'
  AND c2.closingPrice > c1.closingPrice
  AND c2.timestamp = c1.timestamp
for (t = 50; t < 70; t++) {
  WindowIs(c1, t - 4, t);
  WindowIs(c2, t - 4, t);
}
