SELECT qid, operator, payload FROM tcq$errors WHERE operator = 'shared_filter'
