SELECT timestamp, closingPrice FROM ClosingStockPrices
WHERE closingPrice > 20.0
for (t = 1; t <= 12; t++) { WindowIs(ClosingStockPrices, t - 3, t); }
