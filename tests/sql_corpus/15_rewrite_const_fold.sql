SELECT stockSymbol FROM ClosingStockPrices
WHERE closingPrice > 2 * 10 + 5 AND 1 < 2
