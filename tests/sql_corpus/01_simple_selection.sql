SELECT closingPrice FROM ClosingStockPrices WHERE closingPrice > 10.0
