SELECT stockSymbol, closingPrice FROM ClosingStockPrices
WHERE stockSymbol = 'MSFT' AND closingPrice >= 50.0 AND closingPrice < 100.0
