SELECT stockSymbol, closingPrice FROM ClosingStockPrices
WHERE closingPrice > 55.0 AND closingPrice > timestamp
for (t = 1; t <= 12; t++) { WindowIs(ClosingStockPrices, t - 3, t); }
