SELECT stockSymbol, COUNT(*) AS n FROM ClosingStockPrices
GROUP BY stockSymbol ORDER BY n DESC, 1
for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 3); }
