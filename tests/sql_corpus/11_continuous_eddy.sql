SELECT stockSymbol, closingPrice FROM ClosingStockPrices
WHERE closingPrice > timestamp AND stockSymbol <> 'IBM'
