SELECT AVG(closingPrice) AS avgPrice, MAX(closingPrice) AS hi
FROM ClosingStockPrices
for (t = 5; t <= 50; t += 5) { WindowIs(ClosingStockPrices, t - 4, t); }
