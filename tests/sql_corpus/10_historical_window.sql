SELECT COUNT(*) AS n, MAX(closingPrice) AS hi FROM ClosingStockPrices
for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 50, 149); }
