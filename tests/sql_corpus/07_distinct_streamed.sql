SELECT DISTINCT stockSymbol FROM ClosingStockPrices WHERE closingPrice > 0.0
