SELECT stream, policy, value FROM tcq$shed WHERE metric = 'shed' AND value > 0
