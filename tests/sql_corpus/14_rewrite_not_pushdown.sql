SELECT timestamp, closingPrice FROM ClosingStockPrices
WHERE NOT (closingPrice <= 25.0 OR timestamp < 3)
