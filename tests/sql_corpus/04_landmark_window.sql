SELECT COUNT(*) AS n FROM ClosingStockPrices
for (t = 1; t <= 30; t++) { WindowIs(ClosingStockPrices, 1, t); }
