SELECT * FROM tcq$queues WHERE depth > 100
